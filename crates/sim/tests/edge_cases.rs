//! Edge-case and failure-injection tests for the cluster simulator.

use hierdrl_sim::prelude::*;

fn job(id: u64, t: f64, dur: f64, cpu: f64) -> Job {
    Job::new(
        JobId(id),
        SimTime::from_secs(t),
        dur,
        ResourceVec::cpu_mem_disk(cpu, 0.05, 0.01),
    )
}

#[test]
fn empty_workload_is_a_valid_run() {
    let mut cluster = Cluster::new(ClusterConfig::paper(3), Vec::new()).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 0);
    assert_eq!(out.totals.energy_joules, 0.0); // no events, no elapsed time
}

#[test]
fn zero_transition_times_are_supported() {
    let mut config = ClusterConfig::paper(1);
    config.t_on = 0.0;
    config.t_off = 0.0;
    config.servers_initially_on = false;
    let mut cluster = Cluster::new(config, vec![job(0, 10.0, 60.0, 0.5)]).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut SleepImmediatelyPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 1);
    // Instant wake: no added latency.
    assert_eq!(cluster.completed_jobs()[0].latency(), 60.0);
}

#[test]
fn single_server_cluster_handles_full_size_jobs() {
    let jobs = vec![job(0, 0.0, 100.0, 1.0), job(1, 1.0, 100.0, 1.0)];
    let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 2);
    // Serialized: second job waits for the first.
    assert_eq!(cluster.completed_jobs()[1].waiting_time(), 99.0);
}

#[test]
fn simultaneous_arrivals_are_processed_in_id_order() {
    let jobs: Vec<Job> = (0..5).map(|i| job(i, 100.0, 50.0, 0.1)).collect();
    let mut cluster = Cluster::new(ClusterConfig::paper(5), jobs).unwrap();
    cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    // Round-robin: job i lands on server i (deterministic tie-break).
    for (i, s) in cluster.servers().iter().enumerate() {
        assert_eq!(s.stats().jobs_completed, 1, "server {i}");
    }
}

#[test]
fn jobs_arriving_at_time_zero_on_sleeping_cluster() {
    let mut config = ClusterConfig::paper(2);
    config.servers_initially_on = false;
    let jobs = vec![job(0, 0.0, 60.0, 0.3), job(1, 0.0, 60.0, 0.3)];
    let mut cluster = Cluster::new(config, jobs).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut FixedTimeoutPower::new(30.0),
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 2);
    for rec in cluster.completed_jobs() {
        assert_eq!(rec.latency(), 90.0); // 30 s wake + 60 s service
    }
}

#[test]
fn timeout_longer_than_remaining_workload_still_drains() {
    // A pending timeout event must not prevent run() from terminating.
    let jobs = vec![job(0, 0.0, 10.0, 0.2)];
    let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut FixedTimeoutPower::new(100_000.0),
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 1);
    // The run ends at the timeout event (the last scheduled event).
    assert!(out.end_time.as_secs() >= 10.0);
}

#[test]
fn max_time_limit_cuts_mid_execution() {
    let jobs = vec![job(0, 0.0, 1_000.0, 0.2)];
    let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit {
            max_completed: None,
            max_time: Some(SimTime::from_secs(500.0)),
        },
    );
    assert_eq!(out.totals.jobs_completed, 0);
    assert_eq!(out.end_time.as_secs(), 500.0);
}

#[test]
fn heavy_burst_to_one_server_preserves_all_jobs() {
    // 100 simultaneous jobs, one server: everything must still complete.
    struct ToZero;
    impl Allocator for ToZero {
        fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
            ServerId(0)
        }
    }
    let jobs: Vec<Job> = (0..100).map(|i| job(i, 0.0, 30.0, 0.2)).collect();
    let mut cluster = Cluster::new(ClusterConfig::paper(4), jobs).unwrap();
    let out = cluster.run(&mut ToZero, &mut AlwaysOnPower, RunLimit::unbounded());
    assert_eq!(out.totals.jobs_completed, 100);
    assert_eq!(cluster.servers()[0].stats().jobs_completed, 100);
    assert_eq!(cluster.servers()[0].stats().max_jobs_in_system, 100);
}

#[test]
fn power_off_transition_blocks_start_until_wake_cycle() {
    // Job arrives exactly when the server begins sleeping: Fig. 4(a).
    let mut config = ClusterConfig::paper(1);
    config.servers_initially_on = false;
    let jobs = vec![job(0, 0.0, 10.0, 0.5), job(1, 45.0, 10.0, 0.5)];
    // Timeline: wake 0-30, job0 runs 30-40, sleep starts at 40 (ad hoc);
    // job1 arrives at 45 — during GoingToSleep.
    let mut cluster = Cluster::new(config, jobs).unwrap();
    cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut SleepImmediatelyPower,
        RunLimit::unbounded(),
    );
    let rec = &cluster.completed_jobs()[1];
    // Sleep completes 70, wake 70-100, run 100-110.
    assert_eq!(rec.finished.as_secs(), 110.0);
}

#[test]
fn cluster_rejects_dimension_mismatch() {
    let bad = Job::new(JobId(0), SimTime::ZERO, 10.0, ResourceVec::new(&[0.5, 0.5]));
    assert!(Cluster::new(ClusterConfig::paper(1), vec![bad]).is_err());
}

#[test]
fn invalid_configs_are_rejected() {
    let mut c = ClusterConfig::paper(2);
    c.t_on = f64::NAN;
    assert!(Cluster::new(c, Vec::new()).is_err());

    let mut c = ClusterConfig::paper(2);
    c.sample_every = 0;
    assert!(Cluster::new(c, Vec::new()).is_err());

    let mut c = ClusterConfig::paper(2);
    c.power.peak_watts = 1.0; // below idle
    assert!(Cluster::new(c, Vec::new()).is_err());
}

#[test]
fn overload_metric_reflects_anti_colocation() {
    // Stuff 12 tiny jobs onto one server: overload must become positive
    // once past the colocation cap (8 by default).
    struct ToZero;
    impl Allocator for ToZero {
        fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
            ServerId(0)
        }
    }
    let jobs: Vec<Job> = (0..12).map(|i| job(i, 0.0, 1_000.0, 0.01)).collect();
    let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs).unwrap();
    let out = cluster.run(&mut ToZero, &mut AlwaysOnPower, RunLimit::unbounded());
    assert!(
        out.totals.overload_integral > 0.0,
        "colocation beyond the cap must register as overload"
    );
}

#[test]
fn heterogeneous_capacities_change_packing() {
    // Server 0 has 2x capacity: a pair of 0.8-CPU jobs that would
    // serialize on a unit server run concurrently on the big one.
    let mut config = ClusterConfig::paper(2);
    config.server_capacities = Some(vec![
        ResourceVec::cpu_mem_disk(2.0, 2.0, 2.0),
        ResourceVec::ones(3),
    ]);
    struct ToZero;
    impl Allocator for ToZero {
        fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
            ServerId(0)
        }
    }
    let jobs = vec![job(0, 0.0, 100.0, 0.8), job(1, 0.0, 100.0, 0.8)];
    let mut cluster = Cluster::new(config, jobs).unwrap();
    cluster.run(&mut ToZero, &mut AlwaysOnPower, RunLimit::unbounded());
    // Both finish at t = 100: no serialization on the double-size server.
    for rec in cluster.completed_jobs() {
        assert_eq!(rec.finished.as_secs(), 100.0);
        assert_eq!(rec.waiting_time(), 0.0);
    }
}

/// Pins every job to server 0 — combined with the healthy-pool remap, a
/// crash of server 0 exercises the requeue-through-allocator path.
struct PinToZero;
impl Allocator for PinToZero {
    fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
        ServerId(0)
    }
}

#[test]
fn crash_requeues_running_and_queued_jobs_exactly_once() {
    // Four 0.8-CPU jobs pinned to server 0: one runs, three queue. The
    // crash at t = 50 drains all four; each must be re-placed exactly once
    // (no loss, no duplication) and restart from scratch on server 1.
    let jobs: Vec<Job> = (0..4).map(|i| job(i, 0.0, 100.0, 0.8)).collect();
    let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs).unwrap();
    cluster.schedule_fleet_op(SimTime::from_secs(50.0), FleetOp::Crash(ServerId(0)));
    let out = cluster.run(&mut PinToZero, &mut AlwaysOnPower, RunLimit::unbounded());

    assert_eq!(
        out.totals.jobs_arrived, 4,
        "requeues must not inflate arrivals"
    );
    assert_eq!(out.totals.jobs_requeued, 4);
    assert_eq!(out.totals.jobs_completed, 4);
    let recs = cluster.completed_jobs();
    let mut ids: Vec<u64> = recs.iter().map(|r| r.id.0).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3], "each job completes exactly once");
    for rec in recs {
        assert_eq!(
            rec.server,
            ServerId(1),
            "crashed server ran nothing to completion"
        );
    }
    // The running job lost 50 s of work: it restarts at 50 and serializes
    // with the other three on server 1 (0.8 CPU each), finishing at 150,
    // 250, 350, 450.
    let mut finishes: Vec<f64> = recs.iter().map(|r| r.finished.as_secs()).collect();
    finishes.sort_by(f64::total_cmp);
    assert_eq!(finishes, vec![150.0, 250.0, 350.0, 450.0]);
    assert_eq!(cluster.servers()[0].stats().jobs_completed, 0);
    assert_eq!(cluster.servers()[1].stats().jobs_completed, 4);
}

#[test]
fn crash_mid_wake_then_recover_does_not_double_count_transition_energy() {
    // Server 0 begins waking at t = 0 for the pinned job, crashes at t = 10
    // (mid-transition), and recovers at t = 20. The abandoned transition
    // must charge exactly the 10 s actually spent in it, and the stale
    // WakeComplete at t = 30 must not flip the (asleep, recovered) server
    // on or add transition energy.
    let mut config = ClusterConfig::paper(2);
    config.servers_initially_on = false;
    let jobs = vec![job(0, 0.0, 40.0, 0.5)];
    let mut cluster = Cluster::new(config, jobs).unwrap();
    cluster.schedule_fleet_op(SimTime::from_secs(10.0), FleetOp::Crash(ServerId(0)));
    cluster.schedule_fleet_op(SimTime::from_secs(20.0), FleetOp::Recover(ServerId(0)));
    let out = cluster.run(&mut PinToZero, &mut AlwaysOnPower, RunLimit::unbounded());

    // The job re-placed onto server 1 at t = 10: wake 10..40, run 40..80.
    assert_eq!(out.totals.jobs_completed, 1);
    assert_eq!(cluster.completed_jobs()[0].server, ServerId(1));
    assert_eq!(cluster.completed_jobs()[0].finished.as_secs(), 80.0);

    let s0 = cluster.servers()[0].stats();
    assert_eq!(s0.wake_transitions, 1, "the abandoned wake counts once");
    assert_eq!(
        s0.transition_seconds, 10.0,
        "only the 10 s actually in transition"
    );
    assert!(
        (s0.energy_joules - 145.0 * 10.0).abs() < 1e-6,
        "10 s of transition power, nothing more, got {}",
        s0.energy_joules
    );
    assert!(matches!(
        cluster.servers()[0].state(),
        MachineState::Sleeping
    ));
    assert!(cluster.servers()[0].is_healthy());
    // Fleet energy still equals the sum of per-server energies.
    let sum: f64 = cluster
        .servers()
        .iter()
        .map(|s| s.stats().energy_joules)
        .sum();
    assert!((out.totals.energy_joules - sum).abs() < 1e-6);
}

#[test]
#[should_panic(expected = "last healthy server")]
fn crash_of_last_healthy_server_is_rejected() {
    let jobs = vec![job(0, 0.0, 200.0, 0.2)];
    let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs).unwrap();
    cluster.schedule_fleet_op(SimTime::from_secs(10.0), FleetOp::Crash(ServerId(0)));
    cluster.schedule_fleet_op(SimTime::from_secs(20.0), FleetOp::Crash(ServerId(1)));
    cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
}

#[test]
fn degraded_capacity_gates_new_starts_and_registers_overload() {
    // A 0.6-CPU job is running when the cap window shrinks the server to
    // 50%: the running job is not killed (utilization rises past 1, the
    // overload integral sees the hot spot), but the queued 0.6-CPU job
    // cannot start until the cap lifts.
    let jobs = vec![job(0, 0.0, 100.0, 0.6), job(1, 10.0, 100.0, 0.6)];
    let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
    cluster.schedule_fleet_op(
        SimTime::from_secs(5.0),
        FleetOp::SetScale {
            server: ServerId(0),
            scale: 0.5,
        },
    );
    cluster.schedule_fleet_op(
        SimTime::from_secs(150.0),
        FleetOp::SetScale {
            server: ServerId(0),
            scale: 1.0,
        },
    );
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 2);
    let recs = cluster.completed_jobs();
    assert_eq!(
        recs[0].finished.as_secs(),
        100.0,
        "running job survives the cap"
    );
    // Job 1 queued from t = 10; at t = 100 the head would fit nominally,
    // but capacity is still 0.5 < 0.6 — it starts only when the cap lifts
    // at t = 150.
    assert_eq!(recs[1].started.as_secs(), 150.0);
    assert_eq!(recs[1].finished.as_secs(), 250.0);
    assert!(
        out.totals.overload_integral > 0.0,
        "running past the shrunk capacity must register as overload"
    );
}

#[test]
fn heterogeneous_capacity_validation() {
    // Wrong count.
    let mut c = ClusterConfig::paper(3);
    c.server_capacities = Some(vec![ResourceVec::ones(3); 2]);
    assert!(c.validate().is_err());

    // Wrong dimensionality.
    let mut c = ClusterConfig::paper(2);
    c.server_capacities = Some(vec![ResourceVec::new(&[1.0]); 2]);
    assert!(c.validate().is_err());

    // Valid heterogeneous setup.
    let mut c = ClusterConfig::paper(2);
    c.server_capacities = Some(vec![
        ResourceVec::cpu_mem_disk(2.0, 1.0, 1.0),
        ResourceVec::ones(3),
    ]);
    assert!(c.validate().is_ok());
}

/// Pins every job to server 1 — after a `Leave(1)` the healthy-pool remap
/// must redirect both requeues and fresh arrivals, and after a `Join` that
/// reuses the slot the pin must land on the rejoined machine again.
struct PinToOne;
impl Allocator for PinToOne {
    fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
        ServerId(1)
    }
}

#[test]
fn join_leave_conserves_jobs() {
    // Four 0.8-CPU jobs pinned to server 1: one runs, three queue. The
    // leave at t = 50 drains all four exactly once onto server 0 (the
    // cyclic healthy remap), where they serialize: 150, 250, 350, 450.
    // A join at t = 300 reuses the departed slot; job 4 (arriving t = 320)
    // then runs on the rejoined server 1 with no queueing: 320..420.
    let mut jobs: Vec<Job> = (0..4).map(|i| job(i, 0.0, 100.0, 0.8)).collect();
    jobs.push(job(4, 320.0, 100.0, 0.8));
    let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs).unwrap();
    cluster.schedule_fleet_op(SimTime::from_secs(50.0), FleetOp::Leave(ServerId(1)));
    cluster.schedule_fleet_op(
        SimTime::from_secs(300.0),
        FleetOp::Join(ServerSpec::unit(3, true)),
    );
    let out = cluster.run(&mut PinToOne, &mut AlwaysOnPower, RunLimit::unbounded());

    assert_eq!(
        out.totals.jobs_arrived, 5,
        "requeues must not inflate arrivals"
    );
    assert_eq!(
        out.totals.jobs_requeued, 4,
        "each drained job requeued exactly once"
    );
    assert_eq!(
        out.totals.jobs_completed, 5,
        "no job lost across leave + join"
    );
    let recs = cluster.completed_jobs();
    let mut ids: Vec<u64> = recs.iter().map(|r| r.id.0).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3, 4], "each job completes exactly once");
    let mut finishes: Vec<f64> = recs.iter().map(|r| r.finished.as_secs()).collect();
    finishes.sort_by(f64::total_cmp);
    assert_eq!(finishes, vec![150.0, 250.0, 350.0, 420.0, 450.0]);
    let late = recs.iter().find(|r| r.id.0 == 4).unwrap();
    assert_eq!(
        late.server,
        ServerId(1),
        "post-join arrival lands on the rejoined slot"
    );
    assert_eq!(
        cluster.num_live(),
        2,
        "join restored the fleet to two live servers"
    );
    assert_eq!(cluster.fleet_ops_ignored(), 0);
}

#[test]
fn departed_slot_draws_no_power_and_keeps_ids_stable() {
    // Server 1 leaves at t = 100 of a 400 s always-on run. The departed
    // slot must stop drawing power at the instant of departure while its
    // ServerId (and slot count) remain stable for control-plane indexing.
    let jobs = vec![job(0, 0.0, 400.0, 0.2)]; // keeps server 0 busy to t=400
    let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs).unwrap();
    cluster.schedule_fleet_op(SimTime::from_secs(100.0), FleetOp::Leave(ServerId(1)));
    let out = cluster.run(&mut PinToZero, &mut AlwaysOnPower, RunLimit::unbounded());
    assert_eq!(out.totals.jobs_completed, 1);
    assert_eq!(
        cluster.servers().len(),
        2,
        "slots are masked, never removed"
    );
    assert_eq!(cluster.num_live(), 1);
    let s1 = cluster.servers()[1].stats();
    // 100 s idle-on before the leave, nothing after: P(0) = 87 W.
    assert!(
        (s1.energy_joules - 87.0 * 100.0).abs() < 1e-6,
        "departed slot must draw zero power, got {} J",
        s1.energy_joules
    );
}

#[test]
fn unknown_fleet_targets_are_counted_no_ops() {
    // Satellite: FleetOp::Recover / SetScale (and friends) aimed at an
    // unknown ServerId are documented no-ops — the run is unaffected and
    // each ignored op increments `fleet_ops_ignored`.
    let jobs = vec![job(0, 0.0, 100.0, 0.5)];
    let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs).unwrap();
    cluster.schedule_fleet_op(SimTime::from_secs(10.0), FleetOp::Recover(ServerId(5)));
    cluster.schedule_fleet_op(
        SimTime::from_secs(20.0),
        FleetOp::SetScale {
            server: ServerId(7),
            scale: 0.5,
        },
    );
    cluster.schedule_fleet_op(SimTime::from_secs(30.0), FleetOp::Crash(ServerId(3)));
    cluster.schedule_fleet_op(SimTime::from_secs(40.0), FleetOp::Leave(ServerId(4)));
    // Inapplicable state: recovering a server that never crashed.
    cluster.schedule_fleet_op(SimTime::from_secs(50.0), FleetOp::Recover(ServerId(0)));
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 1);
    assert_eq!(
        out.totals.jobs_requeued, 0,
        "no-ops must not disturb placement"
    );
    assert_eq!(cluster.completed_jobs()[0].finished.as_secs(), 100.0);
    assert_eq!(cluster.fleet_ops_ignored(), 5);
}

#[test]
fn join_respects_max_servers_and_spec_validation() {
    // Without `max_servers` the fleet is pinned at its starting width:
    // an append-style join is a counted no-op. With headroom, invalid
    // capacities (wrong dims, non-positive) are rejected the same way
    // while a valid join lands on the next fresh slot.
    let mut config = ClusterConfig::paper(1);
    config.max_servers = Some(2);
    let jobs = vec![job(0, 0.0, 200.0, 0.2)];
    let mut cluster = Cluster::new(config, jobs).unwrap();
    // Wrong dimensionality and non-positive capacity: ignored.
    cluster.schedule_fleet_op(
        SimTime::from_secs(10.0),
        FleetOp::Join(ServerSpec::unit(2, true)),
    );
    cluster.schedule_fleet_op(
        SimTime::from_secs(20.0),
        FleetOp::Join(ServerSpec {
            capacity: ResourceVec::new(&[0.0, 1.0, 1.0]),
            initially_on: true,
        }),
    );
    // Valid: appends slot 1. A second valid join exceeds max_servers.
    cluster.schedule_fleet_op(
        SimTime::from_secs(30.0),
        FleetOp::Join(ServerSpec::unit(3, true)),
    );
    cluster.schedule_fleet_op(
        SimTime::from_secs(40.0),
        FleetOp::Join(ServerSpec::unit(3, true)),
    );
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 1);
    assert_eq!(cluster.servers().len(), 2);
    assert_eq!(cluster.num_live(), 2);
    assert_eq!(cluster.fleet_ops_ignored(), 3);
    // The mid-run join must not retroactively integrate the pre-join
    // interval: slot 1 was on for 170 s (t = 30..200) at idle.
    let s1 = cluster.servers()[1].stats();
    assert!(
        (s1.energy_joules - 87.0 * 170.0).abs() < 1e-6,
        "joined server accounts energy only from its join, got {} J",
        s1.energy_joules
    );
}
