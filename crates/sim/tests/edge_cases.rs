//! Edge-case and failure-injection tests for the cluster simulator.

use hierdrl_sim::prelude::*;

fn job(id: u64, t: f64, dur: f64, cpu: f64) -> Job {
    Job::new(
        JobId(id),
        SimTime::from_secs(t),
        dur,
        ResourceVec::cpu_mem_disk(cpu, 0.05, 0.01),
    )
}

#[test]
fn empty_workload_is_a_valid_run() {
    let mut cluster = Cluster::new(ClusterConfig::paper(3), Vec::new()).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 0);
    assert_eq!(out.totals.energy_joules, 0.0); // no events, no elapsed time
}

#[test]
fn zero_transition_times_are_supported() {
    let mut config = ClusterConfig::paper(1);
    config.t_on = 0.0;
    config.t_off = 0.0;
    config.servers_initially_on = false;
    let mut cluster = Cluster::new(config, vec![job(0, 10.0, 60.0, 0.5)]).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut SleepImmediatelyPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 1);
    // Instant wake: no added latency.
    assert_eq!(cluster.completed_jobs()[0].latency(), 60.0);
}

#[test]
fn single_server_cluster_handles_full_size_jobs() {
    let jobs = vec![job(0, 0.0, 100.0, 1.0), job(1, 1.0, 100.0, 1.0)];
    let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 2);
    // Serialized: second job waits for the first.
    assert_eq!(cluster.completed_jobs()[1].waiting_time(), 99.0);
}

#[test]
fn simultaneous_arrivals_are_processed_in_id_order() {
    let jobs: Vec<Job> = (0..5).map(|i| job(i, 100.0, 50.0, 0.1)).collect();
    let mut cluster = Cluster::new(ClusterConfig::paper(5), jobs).unwrap();
    cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit::unbounded(),
    );
    // Round-robin: job i lands on server i (deterministic tie-break).
    for (i, s) in cluster.servers().iter().enumerate() {
        assert_eq!(s.stats().jobs_completed, 1, "server {i}");
    }
}

#[test]
fn jobs_arriving_at_time_zero_on_sleeping_cluster() {
    let mut config = ClusterConfig::paper(2);
    config.servers_initially_on = false;
    let jobs = vec![job(0, 0.0, 60.0, 0.3), job(1, 0.0, 60.0, 0.3)];
    let mut cluster = Cluster::new(config, jobs).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut FixedTimeoutPower::new(30.0),
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 2);
    for rec in cluster.completed_jobs() {
        assert_eq!(rec.latency(), 90.0); // 30 s wake + 60 s service
    }
}

#[test]
fn timeout_longer_than_remaining_workload_still_drains() {
    // A pending timeout event must not prevent run() from terminating.
    let jobs = vec![job(0, 0.0, 10.0, 0.2)];
    let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut FixedTimeoutPower::new(100_000.0),
        RunLimit::unbounded(),
    );
    assert_eq!(out.totals.jobs_completed, 1);
    // The run ends at the timeout event (the last scheduled event).
    assert!(out.end_time.as_secs() >= 10.0);
}

#[test]
fn max_time_limit_cuts_mid_execution() {
    let jobs = vec![job(0, 0.0, 1_000.0, 0.2)];
    let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
    let out = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut AlwaysOnPower,
        RunLimit {
            max_completed: None,
            max_time: Some(SimTime::from_secs(500.0)),
        },
    );
    assert_eq!(out.totals.jobs_completed, 0);
    assert_eq!(out.end_time.as_secs(), 500.0);
}

#[test]
fn heavy_burst_to_one_server_preserves_all_jobs() {
    // 100 simultaneous jobs, one server: everything must still complete.
    struct ToZero;
    impl Allocator for ToZero {
        fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
            ServerId(0)
        }
    }
    let jobs: Vec<Job> = (0..100).map(|i| job(i, 0.0, 30.0, 0.2)).collect();
    let mut cluster = Cluster::new(ClusterConfig::paper(4), jobs).unwrap();
    let out = cluster.run(&mut ToZero, &mut AlwaysOnPower, RunLimit::unbounded());
    assert_eq!(out.totals.jobs_completed, 100);
    assert_eq!(cluster.servers()[0].stats().jobs_completed, 100);
    assert_eq!(cluster.servers()[0].stats().max_jobs_in_system, 100);
}

#[test]
fn power_off_transition_blocks_start_until_wake_cycle() {
    // Job arrives exactly when the server begins sleeping: Fig. 4(a).
    let mut config = ClusterConfig::paper(1);
    config.servers_initially_on = false;
    let jobs = vec![job(0, 0.0, 10.0, 0.5), job(1, 45.0, 10.0, 0.5)];
    // Timeline: wake 0-30, job0 runs 30-40, sleep starts at 40 (ad hoc);
    // job1 arrives at 45 — during GoingToSleep.
    let mut cluster = Cluster::new(config, jobs).unwrap();
    cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut SleepImmediatelyPower,
        RunLimit::unbounded(),
    );
    let rec = &cluster.completed_jobs()[1];
    // Sleep completes 70, wake 70-100, run 100-110.
    assert_eq!(rec.finished.as_secs(), 110.0);
}

#[test]
fn cluster_rejects_dimension_mismatch() {
    let bad = Job::new(JobId(0), SimTime::ZERO, 10.0, ResourceVec::new(&[0.5, 0.5]));
    assert!(Cluster::new(ClusterConfig::paper(1), vec![bad]).is_err());
}

#[test]
fn invalid_configs_are_rejected() {
    let mut c = ClusterConfig::paper(2);
    c.t_on = f64::NAN;
    assert!(Cluster::new(c, Vec::new()).is_err());

    let mut c = ClusterConfig::paper(2);
    c.sample_every = 0;
    assert!(Cluster::new(c, Vec::new()).is_err());

    let mut c = ClusterConfig::paper(2);
    c.power.peak_watts = 1.0; // below idle
    assert!(Cluster::new(c, Vec::new()).is_err());
}

#[test]
fn overload_metric_reflects_anti_colocation() {
    // Stuff 12 tiny jobs onto one server: overload must become positive
    // once past the colocation cap (8 by default).
    struct ToZero;
    impl Allocator for ToZero {
        fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
            ServerId(0)
        }
    }
    let jobs: Vec<Job> = (0..12).map(|i| job(i, 0.0, 1_000.0, 0.01)).collect();
    let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs).unwrap();
    let out = cluster.run(&mut ToZero, &mut AlwaysOnPower, RunLimit::unbounded());
    assert!(
        out.totals.overload_integral > 0.0,
        "colocation beyond the cap must register as overload"
    );
}

#[test]
fn heterogeneous_capacities_change_packing() {
    // Server 0 has 2x capacity: a pair of 0.8-CPU jobs that would
    // serialize on a unit server run concurrently on the big one.
    let mut config = ClusterConfig::paper(2);
    config.server_capacities = Some(vec![
        ResourceVec::cpu_mem_disk(2.0, 2.0, 2.0),
        ResourceVec::ones(3),
    ]);
    struct ToZero;
    impl Allocator for ToZero {
        fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
            ServerId(0)
        }
    }
    let jobs = vec![job(0, 0.0, 100.0, 0.8), job(1, 0.0, 100.0, 0.8)];
    let mut cluster = Cluster::new(config, jobs).unwrap();
    cluster.run(&mut ToZero, &mut AlwaysOnPower, RunLimit::unbounded());
    // Both finish at t = 100: no serialization on the double-size server.
    for rec in cluster.completed_jobs() {
        assert_eq!(rec.finished.as_secs(), 100.0);
        assert_eq!(rec.waiting_time(), 0.0);
    }
}

#[test]
fn heterogeneous_capacity_validation() {
    // Wrong count.
    let mut c = ClusterConfig::paper(3);
    c.server_capacities = Some(vec![ResourceVec::ones(3); 2]);
    assert!(c.validate().is_err());

    // Wrong dimensionality.
    let mut c = ClusterConfig::paper(2);
    c.server_capacities = Some(vec![ResourceVec::new(&[1.0]); 2]);
    assert!(c.validate().is_err());

    // Valid heterogeneous setup.
    let mut c = ClusterConfig::paper(2);
    c.server_capacities = Some(vec![
        ResourceVec::cpu_mem_disk(2.0, 1.0, 1.0),
        ResourceVec::ones(3),
    ]);
    assert!(c.validate().is_ok());
}
