//! Property-based tests of the front-end router: for *any* arrival stream,
//! *any* routing policy, and *any* cluster-capacity vector — uniform
//! (server counts) or heterogeneous (fractional capacity weights) —
//! routing is a lossless, duplication-free, deterministic partition of the
//! stream.

use hierdrl_sim::job::{Job, JobId};
use hierdrl_sim::resources::ResourceVec;
use hierdrl_sim::router::{Router, RouterPolicy};
use hierdrl_sim::time::SimTime;
use proptest::prelude::*;

/// Builds a valid arrival stream (sorted, unique ids) from raw draws.
fn stream_from(raw: Vec<(f64, f64, f64)>) -> Vec<Job> {
    let mut t = 0.0;
    raw.into_iter()
        .enumerate()
        .map(|(i, (gap, duration, cpu))| {
            t += gap;
            Job::new(
                JobId(i as u64),
                SimTime::from_secs(t),
                duration,
                ResourceVec::cpu_mem_disk(cpu, 0.1, 0.05),
            )
        })
        .collect()
}

fn policy_from(index: usize) -> RouterPolicy {
    RouterPolicy::ALL[index % RouterPolicy::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The multiset of jobs across all per-cluster sub-streams equals the
    /// input stream: nothing lost, nothing duplicated, nothing mutated —
    /// under arbitrary heterogeneous capacity weights.
    #[test]
    fn routing_partitions_the_stream(
        raw in prop::collection::vec((0.0f64..30.0, 60.0f64..7200.0, 0.05f64..1.0), 0usize..200),
        weights in prop::collection::vec(0.25f64..9.0, 1usize..6),
        policy_index in 0usize..3,
    ) {
        let jobs = stream_from(raw);
        let policy = policy_from(policy_index);
        let shards = Router::split(policy, &weights, &jobs);
        prop_assert_eq!(shards.len(), weights.len());

        let mut recovered: Vec<Job> = shards.iter().flatten().cloned().collect();
        recovered.sort_by_key(|j| j.id);
        prop_assert_eq!(recovered, jobs);
    }

    /// Every sub-stream preserves arrival order (the shard simulator
    /// requires sorted traces).
    #[test]
    fn sub_streams_preserve_arrival_order(
        raw in prop::collection::vec((0.0f64..10.0, 60.0f64..3600.0, 0.05f64..0.9), 1usize..150),
        weights in prop::collection::vec(0.25f64..6.0, 1usize..5),
        policy_index in 0usize..3,
    ) {
        let jobs = stream_from(raw);
        let shards = Router::split(policy_from(policy_index), &weights, &jobs);
        for shard in &shards {
            for w in shard.windows(2) {
                prop_assert!(w[0].arrival <= w[1].arrival);
                prop_assert!(w[0].id < w[1].id);
            }
        }
    }

    /// Routing is a pure function of (stream, policy, capacities):
    /// re-splitting the same stream reproduces identical sub-streams, and
    /// incremental routing agrees with the batch split.
    #[test]
    fn routing_is_deterministic(
        raw in prop::collection::vec((0.0f64..20.0, 60.0f64..7200.0, 0.05f64..1.0), 1usize..120),
        weights in prop::collection::vec(0.25f64..8.0, 2usize..5),
        policy_index in 0usize..3,
    ) {
        let jobs = stream_from(raw);
        let policy = policy_from(policy_index);
        let a = Router::split(policy, &weights, &jobs);
        let b = Router::split(policy, &weights, &jobs);
        prop_assert_eq!(&a, &b);

        let mut router = Router::new(policy, &weights);
        for job in &jobs {
            let k = router.route(job);
            prop_assert!(k < weights.len());
        }
        let routed: u64 = router.assigned().iter().sum();
        prop_assert_eq!(routed, jobs.len() as u64);
        let lens: Vec<usize> = a.iter().map(Vec::len).collect();
        let assigned: Vec<usize> = router.assigned().iter().map(|&n| n as usize).collect();
        prop_assert_eq!(lens, assigned);
    }

    /// Integer server counts route exactly like the equivalent capacity
    /// weights: counts are the unit-capacity special case, not a separate
    /// code path.
    #[test]
    fn server_counts_equal_unit_capacity_weights(
        raw in prop::collection::vec((0.0f64..15.0, 60.0f64..3600.0, 0.05f64..0.9), 1usize..120),
        sizes in prop::collection::vec(1usize..9, 1usize..6),
        policy_index in 0usize..3,
    ) {
        let jobs = stream_from(raw);
        let policy = policy_from(policy_index);
        let weights: Vec<f64> = sizes.iter().map(|&m| m as f64).collect();
        let mut by_counts = Router::from_server_counts(policy, &sizes);
        let mut by_weights = Router::new(policy, &weights);
        for job in &jobs {
            prop_assert_eq!(by_counts.route(job), by_weights.route(job));
        }
    }

    /// Zeroing out any one cluster's weight — its healthy capacity vanished
    /// after crashes — starves exactly that cluster: it receives no jobs
    /// under any policy, while routing remains a lossless, order-preserving
    /// partition of the stream across the surviving clusters.
    #[test]
    fn zero_capacity_cluster_is_starved_not_divided_by(
        raw in prop::collection::vec((0.0f64..20.0, 60.0f64..7200.0, 0.05f64..1.0), 0usize..150),
        weights in prop::collection::vec(0.25f64..9.0, 2usize..6),
        dead in 0usize..6,
        policy_index in 0usize..3,
    ) {
        let jobs = stream_from(raw);
        let policy = policy_from(policy_index);
        let dead = dead % weights.len();
        let mut weights = weights;
        weights[dead] = 0.0;

        let shards = Router::split(policy, &weights, &jobs);
        prop_assert!(shards[dead].is_empty(), "{policy} routed to the dead cluster");

        let mut recovered: Vec<Job> = shards.iter().flatten().cloned().collect();
        recovered.sort_by_key(|j| j.id);
        prop_assert_eq!(recovered, jobs);
        for shard in &shards {
            for w in shard.windows(2) {
                prop_assert!(w[0].arrival <= w[1].arrival);
            }
        }
    }

    /// Capacity-weighted routing never lets any cluster drift more than one
    /// job from its capacity quota — including fractional, non-uniform
    /// capacity weights (big/little fleets).
    #[test]
    fn weighted_quota_tracks_capacity_weights(
        raw in prop::collection::vec((0.0f64..15.0, 60.0f64..3600.0, 0.05f64..0.9), 1usize..200),
        weights in prop::collection::vec(0.25f64..9.0, 2usize..6),
    ) {
        let jobs = stream_from(raw);
        let total: f64 = weights.iter().sum();
        let mut router = Router::new(RouterPolicy::WeightedByCapacity, &weights);
        for (n, job) in jobs.iter().enumerate() {
            router.route(job);
            for (k, &routed) in router.assigned().iter().enumerate() {
                let quota = (n + 1) as f64 * weights[k] / total;
                prop_assert!(
                    (routed as f64 - quota).abs() <= 1.0,
                    "cluster {} has {} of quota {:.2} after {} jobs",
                    k, routed, quota, n + 1
                );
            }
        }
    }
}
