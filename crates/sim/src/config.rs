//! Cluster configuration.

use crate::power::PowerModel;
use serde::{Deserialize, Serialize};

/// Definition of the per-server reliability "hot spot" penalty that feeds
/// the global tier's reliability objective (Eqn. 4). A server is penalized
/// both for running its busiest resource above `hot_utilization` and for
/// building a backlog deeper than `hot_queue_len` jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Utilization above which the busiest resource counts as hot.
    pub hot_utilization: f64,
    /// VMs in the system (running + queued) beyond which a server counts
    /// as over-consolidated (anti-colocation).
    pub hot_queue_len: usize,
    /// Penalty per VM beyond `hot_queue_len`.
    pub queue_overload_per_job: f64,
}

impl ReliabilityConfig {
    /// Paper-style defaults: 90% hot-spot threshold, and anti-colocation
    /// pressure beyond 8 VMs on one server (the paper's reliability
    /// objective includes co-location limits to keep failures from hitting
    /// many VMs of one customer at once).
    pub fn paper() -> Self {
        Self {
            hot_utilization: 0.9,
            hot_queue_len: 8,
            queue_overload_per_job: 0.05,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.hot_utilization > 0.0 && self.hot_utilization <= 1.0) {
            return Err(format!(
                "hot_utilization must be in (0, 1], got {}",
                self.hot_utilization
            ));
        }
        if !(self.queue_overload_per_job.is_finite() && self.queue_overload_per_job >= 0.0) {
            return Err(format!(
                "queue_overload_per_job must be >= 0, got {}",
                self.queue_overload_per_job
            ));
        }
        Ok(())
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Configuration of a simulated server cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of physical servers `M`.
    pub num_servers: usize,
    /// Number of resource dimensions `D` (3 for CPU/memory/disk).
    pub resource_dims: usize,
    /// Power model shared by all (homogeneous) servers.
    pub power: PowerModel,
    /// Sleep -> active transition time, seconds. Paper: 30 s.
    pub t_on: f64,
    /// Active -> sleep transition time, seconds. Paper: 30 s.
    pub t_off: f64,
    /// Reliability hot-spot definition (utilization + backlog).
    pub reliability: ReliabilityConfig,
    /// Whether servers start powered on (true matches the round-robin
    /// baseline; sleeping servers wake on their first job either way).
    pub servers_initially_on: bool,
    /// Optional per-server capacity vectors for heterogeneous clusters
    /// (an extension; the paper assumes homogeneity "without loss of
    /// generality"). `None` gives every server unit capacity. When set,
    /// the length must equal `num_servers` and each vector must have
    /// `resource_dims` components.
    ///
    /// Heterogeneity is first-class across the stack: the power model
    /// scales with each server's CPU capacity
    /// ([`Server::peak_scale`](crate::server::Server::peak_scale)), the
    /// front-end [`Router`](crate::router::Router) weights clusters by
    /// aggregate capacity, the DRL state encoder exposes per-slot
    /// capacities (`include_capacity` in `hierdrl-core`), and the
    /// experiment layer ships big/little presets
    /// (`hierdrl_exp::scenario::Topology::big_little` and the
    /// `heterogeneous` suite preset).
    pub server_capacities: Option<Vec<crate::resources::ResourceVec>>,
    /// Upper bound on live servers for elastic (join/leave) runs: the
    /// fleet starts at `num_servers` and may grow to this many slots via
    /// [`FleetOp::Join`](crate::events::FleetOp::Join). `None` (the
    /// default, and every fixed-fleet config) pins the bound to
    /// `num_servers`, so joins beyond the initial fleet are ignored.
    /// Control planes size their per-slot state (state-encoder groups,
    /// per-server Q-agents) by [`ClusterConfig::effective_max`], so a
    /// mid-run join never reshapes learned state.
    #[serde(default)]
    pub max_servers: Option<usize>,
    /// Record a time-series sample every this many job completions.
    pub sample_every: usize,
    /// Use O(1) incremental fleet accounting instead of the eager
    /// `O(num_servers)` per-event sweep. Cluster-wide totals are then
    /// maintained as running integrals updated only when a server is
    /// touched, so they differ from the eager path only in floating-point
    /// association (summation order), never in the underlying quantities.
    /// Per-server statistics stay exact either way; they are simply not
    /// advanced to the current instant between touches until the run ends.
    /// Off by default — the eager path remains bitwise stable.
    #[serde(default)]
    pub lazy_accounting: bool,
    /// Keep a [`CompletedJob`](crate::job::CompletedJob) record per
    /// completion (the default). Raw-scale runs (millions of jobs) turn
    /// this off to bound memory: aggregate totals, latency sums, and
    /// sample curves are unaffected, but per-job records (and therefore
    /// latency percentiles) are unavailable.
    #[serde(default = "default_true")]
    pub retain_completed_jobs: bool,
}

fn default_true() -> bool {
    true
}

impl ClusterConfig {
    /// The paper's simulation setup (Section VII-A) for a cluster of
    /// `num_servers` machines.
    pub fn paper(num_servers: usize) -> Self {
        Self {
            num_servers,
            resource_dims: 3,
            power: PowerModel::paper(),
            t_on: 30.0,
            t_off: 30.0,
            reliability: ReliabilityConfig::paper(),
            servers_initially_on: true,
            server_capacities: None,
            max_servers: None,
            sample_every: 1000,
            lazy_accounting: false,
            retain_completed_jobs: true,
        }
    }

    /// The capacity vector of server `i` (unit capacity when the cluster
    /// is homogeneous).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_servers` on a heterogeneous cluster.
    pub fn server_capacity(&self, i: usize) -> crate::resources::ResourceVec {
        match &self.server_capacities {
            Some(caps) => caps[i].clone(),
            None => crate::resources::ResourceVec::ones(self.resource_dims),
        }
    }

    /// The most slots the fleet can ever hold: `max_servers` when declared
    /// (elastic runs), otherwise `num_servers`. Per-slot control-plane
    /// state is sized by this, so membership changes never reshape it.
    pub fn effective_max(&self) -> usize {
        self.max_servers.unwrap_or(self.num_servers)
    }

    /// The capacity vector a server (re)joining slot `i` carries: the
    /// configured capacity for initial-fleet slots, unit capacity for
    /// slots appended beyond `num_servers`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= effective_max()`.
    pub fn slot_capacity(&self, i: usize) -> crate::resources::ResourceVec {
        assert!(
            i < self.effective_max(),
            "slot {i} beyond effective max {}",
            self.effective_max()
        );
        if i < self.num_servers {
            self.server_capacity(i)
        } else {
            crate::resources::ResourceVec::ones(self.resource_dims)
        }
    }

    /// Aggregate cluster capacity: the component-wise sum of every
    /// server's capacity vector (`num_servers` per dimension for a
    /// homogeneous cluster).
    pub fn total_capacity(&self) -> crate::resources::ResourceVec {
        let mut total = crate::resources::ResourceVec::zeros(self.resource_dims);
        match &self.server_capacities {
            Some(caps) => {
                for c in caps {
                    total.add_assign(c);
                }
            }
            None => {
                for _ in 0..self.num_servers {
                    total.add_assign(&crate::resources::ResourceVec::ones(self.resource_dims));
                }
            }
        }
        total
    }

    /// The cluster's routing weight for capacity-aware front-end routing:
    /// aggregate CPU capacity in unit-server equivalents. Exactly
    /// `num_servers as f64` for a homogeneous cluster, so server count
    /// remains the fallback weight on unit-capacity fleets.
    pub fn routing_weight(&self) -> f64 {
        self.total_capacity().cpu()
    }

    /// Sum of per-server power-model multipliers (CPU capacities): the
    /// fleet's peak power is `power.peak_watts * total_peak_scale()`. The
    /// same quantity as [`ClusterConfig::routing_weight`] (aggregate CPU
    /// capacity), named for its power-model role.
    pub fn total_peak_scale(&self) -> f64 {
        self.routing_weight()
    }

    /// The smallest and largest per-server CPU capacity in the cluster
    /// (`(1.0, 1.0)` when homogeneous).
    pub fn capacity_cpu_range(&self) -> (f64, f64) {
        match &self.server_capacities {
            Some(caps) => {
                let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
                for c in caps {
                    lo = lo.min(c.cpu());
                    hi = hi.max(c.cpu());
                }
                (lo, hi)
            }
            None => (1.0, 1.0),
        }
    }

    /// Per-server capacity skew: the ratio of the largest to the smallest
    /// CPU capacity across the cluster (`1.0` when homogeneous).
    pub fn capacity_skew(&self) -> f64 {
        let (lo, hi) = self.capacity_cpu_range();
        hi / lo
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_servers == 0 {
            return Err("cluster needs at least one server".into());
        }
        if self.resource_dims == 0 {
            return Err("cluster needs at least one resource dimension".into());
        }
        self.power.validate()?;
        if !(self.t_on.is_finite() && self.t_on >= 0.0) {
            return Err(format!("t_on must be >= 0, got {}", self.t_on));
        }
        if !(self.t_off.is_finite() && self.t_off >= 0.0) {
            return Err(format!("t_off must be >= 0, got {}", self.t_off));
        }
        self.reliability.validate()?;
        if let Some(caps) = &self.server_capacities {
            if caps.len() != self.num_servers {
                return Err(format!(
                    "server_capacities has {} entries for {} servers",
                    caps.len(),
                    self.num_servers
                ));
            }
            for (i, c) in caps.iter().enumerate() {
                if c.dims() != self.resource_dims {
                    return Err(format!(
                        "server {i} capacity has {} dims, expected {}",
                        c.dims(),
                        self.resource_dims
                    ));
                }
                if c.as_slice().iter().any(|&v| v <= 0.0) {
                    return Err(format!("server {i} capacity must be positive"));
                }
            }
        }
        if let Some(max) = self.max_servers {
            if max < self.num_servers {
                return Err(format!(
                    "max_servers ({max}) must be >= num_servers ({})",
                    self.num_servers
                ));
            }
        }
        if self.sample_every == 0 {
            return Err("sample_every must be positive".into());
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper(30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert!(ClusterConfig::paper(30).validate().is_ok());
        assert!(ClusterConfig::paper(40).validate().is_ok());
    }

    #[test]
    fn zero_servers_rejected() {
        assert!(ClusterConfig::paper(0).validate().is_err());
    }

    #[test]
    fn bad_threshold_rejected() {
        let mut c = ClusterConfig::paper(10);
        c.reliability.hot_utilization = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn capacity_aggregates_for_homogeneous_and_big_little() {
        use crate::resources::ResourceVec;
        let homo = ClusterConfig::paper(4);
        assert_eq!(homo.total_capacity(), ResourceVec::new(&[4.0, 4.0, 4.0]));
        assert_eq!(homo.routing_weight(), 4.0);
        assert_eq!(homo.total_peak_scale(), 4.0);
        assert_eq!(homo.capacity_skew(), 1.0);
        assert_eq!(homo.server_capacity(2), ResourceVec::ones(3));

        let mut hetero = ClusterConfig::paper(4);
        hetero.server_capacities = Some(vec![
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            ResourceVec::ones(3),
            ResourceVec::ones(3),
            ResourceVec::ones(3),
        ]);
        assert!(hetero.validate().is_ok());
        assert_eq!(hetero.total_capacity(), ResourceVec::new(&[5.0, 5.0, 5.0]));
        assert_eq!(hetero.routing_weight(), 5.0);
        assert_eq!(hetero.capacity_skew(), 2.0);
        assert_eq!(hetero.server_capacity(0).cpu(), 2.0);
    }

    #[test]
    fn serde_round_trip() {
        let c = ClusterConfig::paper(40);
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
