//! Multi-dimensional server resources.
//!
//! The paper considers `D` resource types per server (CPU, memory, disk in
//! the Google traces), with job demands normalized by the capacity of one
//! server.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The resource types used by the Google-trace workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU cores (normalized).
    Cpu,
    /// Memory (normalized).
    Memory,
    /// Local disk (normalized).
    Disk,
}

impl ResourceKind {
    /// The standard three-resource set in trace column order.
    pub const STANDARD: [ResourceKind; 3] =
        [ResourceKind::Cpu, ResourceKind::Memory, ResourceKind::Disk];

    /// Index of this kind within [`ResourceKind::STANDARD`].
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::Disk => 2,
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::Disk => "disk",
        };
        f.write_str(name)
    }
}

/// A `D`-dimensional resource quantity (demand, usage, or capacity),
/// normalized so that one server's capacity is `1.0` per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceVec(Vec<f64>);

impl ResourceVec {
    /// A zero vector with `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn zeros(dims: usize) -> Self {
        assert!(dims > 0, "resource vector needs at least one dimension");
        ResourceVec(vec![0.0; dims])
    }

    /// A vector of ones (one full server) with `dims` dimensions.
    pub fn ones(dims: usize) -> Self {
        assert!(dims > 0, "resource vector needs at least one dimension");
        ResourceVec(vec![1.0; dims])
    }

    /// Builds from components.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or any component is negative or non-finite.
    pub fn new(values: &[f64]) -> Self {
        assert!(
            !values.is_empty(),
            "resource vector needs at least one dimension"
        );
        for (i, &v) in values.iter().enumerate() {
            assert!(
                v.is_finite() && v >= 0.0,
                "resource component {i} must be finite and non-negative, got {v}"
            );
        }
        ResourceVec(values.to_vec())
    }

    /// CPU/memory/disk convenience constructor.
    pub fn cpu_mem_disk(cpu: f64, mem: f64, disk: f64) -> Self {
        Self::new(&[cpu, mem, disk])
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dims()`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// The CPU component (dimension 0).
    #[inline]
    pub fn cpu(&self) -> f64 {
        self.0[0]
    }

    /// All components as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// `self + other`, component-wise.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &ResourceVec) -> ResourceVec {
        self.check_dims(other);
        ResourceVec(self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect())
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_assign(&mut self, other: &ResourceVec) {
        self.check_dims(other);
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// In-place `self -= other`, clamping tiny negative residue (floating
    /// point) to zero.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch, or (debug) if a component would become
    /// significantly negative.
    pub fn sub_assign(&mut self, other: &ResourceVec) {
        self.check_dims(other);
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            debug_assert!(
                *a >= *b - 1e-9,
                "resource release would go negative: {a} - {b}"
            );
            *a = (*a - b).max(0.0);
        }
    }

    /// Whether `self + extra` fits within `capacity` in every dimension
    /// (with a tiny epsilon for floating-point accumulation).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn fits_with(&self, extra: &ResourceVec, capacity: &ResourceVec) -> bool {
        self.check_dims(extra);
        self.check_dims(capacity);
        self.0
            .iter()
            .zip(&extra.0)
            .zip(&capacity.0)
            .all(|((u, e), c)| u + e <= c + 1e-9)
    }

    /// Component-wise utilization `self / capacity`, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or zero capacity component.
    pub fn utilization(&self, capacity: &ResourceVec) -> ResourceVec {
        self.check_dims(capacity);
        ResourceVec(
            self.0
                .iter()
                .zip(&capacity.0)
                .map(|(u, c)| {
                    assert!(*c > 0.0, "capacity component must be positive");
                    (u / c).clamp(0.0, 1.0)
                })
                .collect(),
        )
    }

    /// Largest component.
    pub fn max_component(&self) -> f64 {
        self.0.iter().cloned().fold(0.0, f64::max)
    }

    /// Sum of components.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    fn check_dims(&self, other: &ResourceVec) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "resource dimension mismatch: {} vs {}",
            self.dims(),
            other.dims()
        );
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_kinds_index_in_order() {
        for (i, k) in ResourceKind::STANDARD.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn add_and_sub_round_trip() {
        let mut u = ResourceVec::zeros(3);
        let d = ResourceVec::cpu_mem_disk(0.5, 0.25, 0.1);
        u.add_assign(&d);
        assert_eq!(u, d);
        u.sub_assign(&d);
        assert_eq!(u, ResourceVec::zeros(3));
    }

    #[test]
    fn fits_with_respects_capacity() {
        let used = ResourceVec::cpu_mem_disk(0.6, 0.2, 0.0);
        let cap = ResourceVec::ones(3);
        assert!(used.fits_with(&ResourceVec::cpu_mem_disk(0.4, 0.5, 0.9), &cap));
        assert!(!used.fits_with(&ResourceVec::cpu_mem_disk(0.41, 0.0, 0.0), &cap));
    }

    #[test]
    fn utilization_is_clamped() {
        let used = ResourceVec::cpu_mem_disk(1.5, 0.5, 0.0);
        let cap = ResourceVec::ones(3);
        let u = used.utilization(&cap);
        assert_eq!(u.as_slice(), &[1.0, 0.5, 0.0]);
    }

    #[test]
    fn max_component_and_sum() {
        let v = ResourceVec::cpu_mem_disk(0.1, 0.7, 0.3);
        assert_eq!(v.max_component(), 0.7);
        assert!((v.sum() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn sub_assign_clamps_float_residue() {
        let mut u = ResourceVec::new(&[0.30000000000000004]);
        u.sub_assign(&ResourceVec::new(&[0.3000000000000001]));
        assert_eq!(u.get(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = ResourceVec::zeros(2);
        let b = ResourceVec::zeros(3);
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_component_rejected() {
        let _ = ResourceVec::new(&[-0.1]);
    }
}
