//! Discrete-event queue.

use crate::job::{Job, JobId, ServerId};
use crate::resources::ResourceVec;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Specification of a server joining the fleet mid-run (the elastic axis).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Capacity vector of the joining server; must match the cluster's
    /// resource dimensionality. The power curve scales with the CPU
    /// component, exactly as for any heterogeneous server.
    pub capacity: ResourceVec,
    /// Whether the server comes up powered on. When `false` it joins
    /// asleep and wakes through the normal transition on its first job.
    pub initially_on: bool,
}

impl ServerSpec {
    /// A unit-capacity server with `dims` resource dimensions.
    pub fn unit(dims: usize, initially_on: bool) -> Self {
        Self {
            capacity: ResourceVec::ones(dims),
            initially_on,
        }
    }
}

/// A deterministic fleet mutation applied between arrivals: the event-level
/// lowering of the chaos axis (crashes, stragglers, power-cap windows) and
/// of the elastic axis (membership changes).
///
/// Ops targeting an invalid server — an out-of-range id, a departed slot,
/// or a state the op does not apply to (recover of a healthy server, crash
/// of a crashed one) — are documented no-ops counted in
/// [`Cluster::fleet_ops_ignored`](crate::cluster::Cluster::fleet_ops_ignored),
/// never silent index panics.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetOp {
    /// The server fails: its queued and running jobs are requeued through
    /// the allocator exactly once, and it stops accepting work (and drawing
    /// power) until a matching [`FleetOp::Recover`].
    Crash(ServerId),
    /// The server returns to the healthy pool (asleep; the next arrival
    /// routed to it wakes it through the normal transition).
    Recover(ServerId),
    /// Scales the server's capacity (and its power curve) to `scale` times
    /// nominal — a straggler (`scale < 1` transiently) or a power-cap
    /// window. `scale = 1.0` restores nominal.
    SetScale {
        /// The affected server.
        server: ServerId,
        /// Multiplier of nominal capacity, in `(0, 1]`.
        scale: f64,
    },
    /// A server joins the fleet: the lowest-index departed slot is re-used
    /// (so `ServerId`s stay stable for every incumbent), or a fresh slot is
    /// appended while the fleet is below
    /// [`ClusterConfig::effective_max`](crate::config::ClusterConfig::effective_max).
    Join(ServerSpec),
    /// The server leaves the fleet: queued and running jobs are drained and
    /// requeued through the allocator exactly once (crash semantics), and
    /// the slot is masked — excluded from every aggregate and never offered
    /// work — until a later [`FleetOp::Join`] re-uses it.
    Leave(ServerId),
}

/// A simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A job arrives at the broker (a global-tier decision epoch).
    JobArrival(Job),
    /// A scheduled fleet mutation (chaos axis) fires.
    FleetChange {
        /// The mutation to apply.
        op: FleetOp,
    },
    /// A running job finishes on a server.
    JobFinish {
        /// The executing server.
        server: ServerId,
        /// The finishing job.
        job: JobId,
    },
    /// A server completes its sleep -> active transition.
    WakeComplete {
        /// The transitioning server.
        server: ServerId,
    },
    /// A server completes its active -> sleep transition.
    SleepComplete {
        /// The transitioning server.
        server: ServerId,
    },
    /// A power-management timeout expires. Ignored unless `token` is still
    /// the server's current timeout token.
    TimeoutFired {
        /// The idle server.
        server: ServerId,
        /// Token that must match the server's current one.
        token: u64,
    },
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (time, seq); seq breaks ties
        // deterministically in insertion order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority event queue ordered by `(time, insertion)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(s: usize) -> Event {
        Event::WakeComplete {
            server: ServerId(s),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), wake(1));
        q.push(SimTime::from_secs(1.0), wake(2));
        q.push(SimTime::from_secs(3.0), wake(3));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_secs())
            .collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2.0);
        q.push(t, wake(1));
        q.push(t, wake(2));
        q.push(t, wake(3));
        let ids: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::WakeComplete { server } => server.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7.0), wake(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
