//! Simulation time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the run.
///
/// `SimTime` is totally ordered; constructing a non-finite time panics, so
/// event-queue ordering is always well defined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero (start of the simulation).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN or infinite, or negative.
    pub fn from_secs(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "SimTime must be finite, got {seconds}");
        assert!(
            seconds >= 0.0,
            "SimTime must be non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Creates a time from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Seconds since time zero.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Hours since time zero.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Seconds between `self` and an earlier time.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        debug_assert!(
            self.0 >= earlier.0 - 1e-9,
            "since() called with a later time: {} < {}",
            self.0,
            earlier.0
        );
        (self.0 - earlier.0).max(0.0)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finiteness is enforced at construction, so total order is safe.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, seconds: f64) -> SimTime {
        SimTime::from_secs(self.0 + seconds)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, seconds: f64) {
        *self = *self + seconds;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_secs(10.0) + 5.0;
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!(t.since(SimTime::from_secs(10.0)), 5.0);
        assert_eq!(t - SimTime::from_secs(5.0), 10.0);
    }

    #[test]
    fn hours_conversion() {
        assert_eq!(SimTime::from_hours(1.0).as_secs(), 3600.0);
        assert!((SimTime::from_secs(7200.0).as_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_is_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_is_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }
}
