//! A single physical server: FCFS job queue, resource accounting,
//! power-state machine, and time-integrated statistics.

use crate::config::ReliabilityConfig;
use crate::job::{Job, JobId};
use crate::power::{MachineState, PowerModel};
use crate::resources::ResourceVec;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A job currently holding resources on a server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningJob {
    /// The job id.
    pub id: JobId,
    /// Resources held.
    pub demand: ResourceVec,
    /// When the job originally arrived at the broker.
    pub arrival: SimTime,
    /// When execution started.
    pub started: SimTime,
    /// When execution will finish.
    pub finishes: SimTime,
}

/// Time-integrated per-server statistics.
///
/// All integrals advance lazily: [`Server::account`] must be called with the
/// current time before any state change, which the cluster guarantees.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Total energy consumed, joules.
    pub energy_joules: f64,
    /// `∫ jobs_in_system dt` — queued plus running jobs, by Little's law
    /// proportional to accumulated latency.
    pub jobs_in_system_integral: f64,
    /// `∫ queued_jobs dt` — waiting jobs only (including those waiting for
    /// a wake transition). The policy-sensitive part of the VM count: every
    /// job runs for its fixed duration wherever it is placed, so only the
    /// waiting room differs between policies.
    pub queue_integral: f64,
    /// `∫ overload(t) dt` where overload is the amount by which the busiest
    /// resource exceeds the hot-spot threshold.
    pub overload_integral: f64,
    /// Seconds spent with at least one running job.
    pub busy_seconds: f64,
    /// Seconds spent on but with no running jobs.
    pub idle_seconds: f64,
    /// Seconds spent asleep.
    pub sleep_seconds: f64,
    /// Seconds spent in wake/sleep transitions.
    pub transition_seconds: f64,
    /// Number of sleep -> wake transitions begun.
    pub wake_transitions: u64,
    /// Number of active -> sleep transitions begun.
    pub sleep_transitions: u64,
    /// Jobs fully executed on this server.
    pub jobs_completed: u64,
    /// Deepest backlog (queued + running) ever observed.
    pub max_jobs_in_system: u64,
}

/// A physical server.
#[derive(Debug, Clone)]
pub struct Server {
    capacity: ResourceVec,
    /// Nameplate capacity: what `capacity` returns to when a degradation
    /// window ([`Server::set_degraded_scale`]) ends.
    nominal_capacity: ResourceVec,
    /// Multiplier applied to the (per-unit-server) power model: a server
    /// with twice the CPU capacity draws twice the Fan-et-al curve at the
    /// same relative utilization. Derived from the CPU capacity component,
    /// so unit-capacity (homogeneous) fleets keep the paper's numbers
    /// exactly.
    peak_scale: f64,
    /// Whether the server is in the healthy pool. A crashed server reports
    /// unhealthy until recovered and must not be offered jobs.
    healthy: bool,
    /// Whether the server has left the fleet (elastic axis). A departed
    /// slot is masked — unhealthy, zero-capacity for aggregates, never
    /// offered work — until a later join re-uses it.
    departed: bool,
    used: ResourceVec,
    state: MachineState,
    /// Set when a job arrives while the server is descending into sleep;
    /// the server must re-wake as soon as the sleep transition finishes
    /// (Fig. 4(a) semantics: transitions cannot be aborted).
    wake_after_sleep: bool,
    queue: VecDeque<Job>,
    running: Vec<RunningJob>,
    /// Incremented to invalidate outstanding timeout events.
    timeout_token: u64,
    last_account: SimTime,
    stats: ServerStats,
    reliability: ReliabilityConfig,
}

impl Server {
    /// Creates a powered-on, empty server.
    ///
    /// # Panics
    ///
    /// Panics if the reliability config is invalid or capacity has a
    /// non-positive component.
    pub fn new(capacity: ResourceVec, initially_on: bool, reliability: ReliabilityConfig) -> Self {
        assert!(
            capacity.as_slice().iter().all(|&c| c > 0.0),
            "server capacity must be positive in every dimension"
        );
        reliability.validate().expect("invalid reliability config");
        let dims = capacity.dims();
        let peak_scale = capacity.cpu();
        Self {
            capacity: capacity.clone(),
            nominal_capacity: capacity,
            peak_scale,
            healthy: true,
            departed: false,
            used: ResourceVec::zeros(dims),
            state: if initially_on {
                MachineState::On
            } else {
                MachineState::Sleeping
            },
            wake_after_sleep: false,
            queue: VecDeque::new(),
            running: Vec::new(),
            timeout_token: 0,
            last_account: SimTime::ZERO,
            stats: ServerStats::default(),
            reliability,
        }
    }

    /// Current power state.
    pub fn state(&self) -> MachineState {
        self.state
    }

    /// Capacity vector.
    pub fn capacity(&self) -> &ResourceVec {
        &self.capacity
    }

    /// Resources currently held by running jobs.
    pub fn used(&self) -> &ResourceVec {
        &self.used
    }

    /// Component-wise utilization in `[0, 1]`.
    pub fn utilization(&self) -> ResourceVec {
        self.used.utilization(&self.capacity)
    }

    /// CPU utilization in `[0, 1]` (drives the power model).
    pub fn cpu_utilization(&self) -> f64 {
        self.utilization().cpu()
    }

    /// Jobs waiting in the FCFS queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently executing.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Queued plus running jobs (the `JQ(t)` of the local-tier reward when
    /// combined with Little's law).
    pub fn jobs_in_system(&self) -> usize {
        self.queue.len() + self.running.len()
    }

    /// Whether the server is on with no jobs at all.
    pub fn is_idle(&self) -> bool {
        self.state.is_on() && self.jobs_in_system() == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Power-model multiplier of this server (its CPU capacity): the power
    /// curve — idle, peak, and transition draw alike — scales with machine
    /// size, so a 2x-capacity server consumes 2x at the same relative
    /// utilization. Exactly `1.0` for unit-capacity (homogeneous) servers.
    pub fn peak_scale(&self) -> f64 {
        self.peak_scale
    }

    /// Instantaneous power draw in watts: the (unit-server) model evaluated
    /// at this server's relative CPU utilization, scaled by
    /// [`Server::peak_scale`].
    pub fn power_watts(&self, model: &PowerModel) -> f64 {
        self.peak_scale * self.state.power_watts(model, self.cpu_utilization())
    }

    /// Reliability hot-spot measure: the amount by which the busiest
    /// resource exceeds the hot-utilization threshold, plus a penalty for
    /// backlog deeper than the hot queue length. Feeds the reliability
    /// term of the global reward (Eqn. 4).
    pub fn overload(&self) -> f64 {
        let util_excess =
            (self.utilization().max_component() - self.reliability.hot_utilization).max(0.0);
        let backlog = self
            .jobs_in_system()
            .saturating_sub(self.reliability.hot_queue_len) as f64;
        util_excess + self.reliability.queue_overload_per_job * backlog
    }

    /// Advances all time integrals to `now`. Must be called before any
    /// mutation that changes power draw or job counts.
    pub fn account(&mut self, now: SimTime, model: &PowerModel) {
        let dt = now.since(self.last_account);
        if dt > 0.0 {
            self.stats.energy_joules += self.power_watts(model) * dt;
            self.stats.jobs_in_system_integral += self.jobs_in_system() as f64 * dt;
            self.stats.queue_integral += self.queue.len() as f64 * dt;
            self.stats.overload_integral += self.overload() * dt;
            match self.state {
                MachineState::On => {
                    if self.running.is_empty() {
                        self.stats.idle_seconds += dt;
                    } else {
                        self.stats.busy_seconds += dt;
                    }
                }
                MachineState::Sleeping => self.stats.sleep_seconds += dt,
                MachineState::WakingUp { .. } | MachineState::GoingToSleep { .. } => {
                    self.stats.transition_seconds += dt
                }
            }
        }
        self.last_account = now;
    }

    /// Appends a job to the FCFS queue (does not start it).
    pub fn enqueue(&mut self, job: Job) {
        self.queue.push_back(job);
        self.stats.max_jobs_in_system = self
            .stats
            .max_jobs_in_system
            .max(self.jobs_in_system() as u64);
    }

    /// Starts queued jobs in strict FCFS order while the head job fits,
    /// returning the newly started jobs (the caller schedules their finish
    /// events). Does nothing unless the server is `On`.
    pub fn start_fitting_jobs(&mut self, now: SimTime) -> Vec<RunningJob> {
        let first = self.running.len();
        let mut pairs = Vec::new();
        self.start_fitting_jobs_into(now, &mut pairs);
        self.running[first..].to_vec()
    }

    /// Allocation-free twin of [`Server::start_fitting_jobs`] for the
    /// simulator hot loop: appends `(job id, finish time)` pairs — all a
    /// caller needs to schedule finish events — to a reusable buffer
    /// instead of cloning full [`RunningJob`] records into a fresh `Vec`.
    pub fn start_fitting_jobs_into(&mut self, now: SimTime, out: &mut Vec<(JobId, SimTime)>) {
        if !self.state.is_on() {
            return;
        }
        while let Some(head) = self.queue.front() {
            if !self.used.fits_with(&head.demand, &self.capacity) {
                // Strict FCFS: the head blocks everything behind it.
                break;
            }
            let job = self.queue.pop_front().expect("front was Some");
            self.used.add_assign(&job.demand);
            let finishes = now + job.duration;
            out.push((job.id, finishes));
            self.running.push(RunningJob {
                id: job.id,
                demand: job.demand,
                arrival: job.arrival,
                started: now,
                finishes,
            });
        }
    }

    /// Completes a running job, releasing its resources. Returns the record
    /// of the job, or `None` if it was not running (e.g. a stale event).
    pub fn complete_job(&mut self, id: JobId) -> Option<RunningJob> {
        let idx = self.running.iter().position(|r| r.id == id)?;
        let run = self.running.swap_remove(idx);
        self.used.sub_assign(&run.demand);
        self.stats.jobs_completed += 1;
        Some(run)
    }

    /// Like [`Server::complete_job`], but only completes the job if its
    /// scheduled finish time is exactly `now`. A job requeued by a crash
    /// can be running *again* under the same id with a later finish time;
    /// the original finish event must then be recognized as stale.
    pub fn complete_job_at(&mut self, id: JobId, now: SimTime) -> Option<RunningJob> {
        let idx = self
            .running
            .iter()
            .position(|r| r.id == id && r.finishes == now)?;
        let run = self.running.swap_remove(idx);
        self.used.sub_assign(&run.demand);
        self.stats.jobs_completed += 1;
        Some(run)
    }

    /// Whether the server is in the healthy pool (not crashed).
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// Fails the server: every queued and running job is drained (queue in
    /// FCFS order, then running jobs in start order) for the cluster to
    /// re-place, resources are released, any in-flight power transition is
    /// abandoned, and the machine drops to the sleeping (0 W) state until
    /// [`Server::recover`]. Running jobs restart from scratch: the drained
    /// job keeps its original arrival (lost work shows up as latency) and
    /// its full duration.
    ///
    /// The caller must [`Server::account`] to `now` first, as with every
    /// state change.
    ///
    /// # Panics
    ///
    /// Panics if the server is already crashed.
    pub fn crash(&mut self, _now: SimTime) -> Vec<Job> {
        assert!(self.healthy, "crash of already-crashed server");
        self.healthy = false;
        let mut drained: Vec<Job> = self.queue.drain(..).collect();
        for run in self.running.drain(..) {
            drained.push(Job::new(
                run.id,
                run.arrival,
                run.finishes.since(run.started),
                run.demand,
            ));
        }
        self.used = ResourceVec::zeros(self.capacity.dims());
        self.state = MachineState::Sleeping;
        self.wake_after_sleep = false;
        self.cancel_timeout();
        drained
    }

    /// Returns a crashed server to the healthy pool. The machine stays
    /// asleep; the next arrival routed to it wakes it through the normal
    /// transition (one wake transition charged, as for any sleeping
    /// server).
    ///
    /// # Panics
    ///
    /// Panics if the server is not crashed.
    pub fn recover(&mut self) {
        assert!(!self.healthy, "recover of a healthy server");
        self.healthy = true;
    }

    /// Whether the server currently occupies a live fleet slot (has not
    /// departed via [`Server::depart`]).
    pub fn is_live(&self) -> bool {
        !self.departed
    }

    /// Removes the server from the fleet (elastic scale-in): the same
    /// drain as [`Server::crash`] — queued jobs in FCFS order, then running
    /// jobs in start order, each for the cluster to re-place exactly once —
    /// then the slot is masked (unhealthy + departed, sleeping at 0 W)
    /// until a later [`Server::rejoin`].
    ///
    /// The caller must [`Server::account`] to `now` first.
    ///
    /// # Panics
    ///
    /// Panics unless the server is healthy and live.
    pub fn depart(&mut self, now: SimTime) -> Vec<Job> {
        assert!(
            self.healthy && !self.departed,
            "depart of an unhealthy or already-departed server"
        );
        let drained = self.crash(now);
        self.departed = true;
        drained
    }

    /// Re-occupies a departed slot with a (possibly different-capacity)
    /// joining server: capacity and power curve are replaced, the slot
    /// returns to the healthy pool, and the machine comes up `On` or
    /// `Sleeping` per `initially_on`. Slot statistics keep accumulating —
    /// the departed interval contributed 0 W sleep time, like any slept
    /// machine.
    ///
    /// The caller must [`Server::account`] to `now` first.
    ///
    /// # Panics
    ///
    /// Panics unless the slot is departed, or if `capacity` has a
    /// non-positive component or the wrong dimensionality.
    pub fn rejoin(&mut self, capacity: ResourceVec, initially_on: bool) {
        assert!(self.departed, "rejoin of a live slot");
        assert_eq!(
            capacity.dims(),
            self.capacity.dims(),
            "joining capacity has {} dims, slot has {}",
            capacity.dims(),
            self.capacity.dims()
        );
        assert!(
            capacity.as_slice().iter().all(|&c| c > 0.0),
            "joining capacity must be positive in every dimension"
        );
        debug_assert_eq!(self.jobs_in_system(), 0, "departed slot held jobs");
        self.peak_scale = capacity.cpu();
        self.capacity = capacity.clone();
        self.nominal_capacity = capacity;
        self.healthy = true;
        self.departed = false;
        self.state = if initially_on {
            MachineState::On
        } else {
            MachineState::Sleeping
        };
        self.wake_after_sleep = false;
        self.cancel_timeout();
    }

    /// Resets the accounting clock to `now` without integrating: used when
    /// a freshly-constructed server joins mid-run, so it does not
    /// retroactively integrate the interval before it existed.
    pub fn reset_account_clock(&mut self, now: SimTime) {
        self.last_account = now;
    }

    /// Scales capacity (and the power curve) to `scale` times nominal — a
    /// straggler or power-cap window; `1.0` restores nominal. Already-held
    /// resources are untouched, so `used` may exceed the shrunk capacity:
    /// utilization rises above 1, the overload integral sees the hot spot,
    /// and no new job starts until the backlog drains below the cap.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is in `(0, 1]`.
    pub fn set_degraded_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0 && scale <= 1.0,
            "degraded scale must be in (0, 1], got {scale}"
        );
        let scaled: Vec<f64> = self
            .nominal_capacity
            .as_slice()
            .iter()
            .map(|&c| c * scale)
            .collect();
        self.capacity = ResourceVec::new(&scaled);
        self.peak_scale = self.nominal_capacity.cpu() * scale;
    }

    /// Begins a sleep -> active transition; returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the server is not `Sleeping`.
    pub fn begin_wake(&mut self, now: SimTime, t_on: f64) -> SimTime {
        assert!(
            matches!(self.state, MachineState::Sleeping),
            "begin_wake from {:?}",
            self.state
        );
        let until = now + t_on;
        self.state = MachineState::WakingUp { until };
        self.stats.wake_transitions += 1;
        until
    }

    /// Begins an active -> sleep transition; returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the server is not `On`, or still has jobs.
    pub fn begin_sleep(&mut self, now: SimTime, t_off: f64) -> SimTime {
        assert!(self.state.is_on(), "begin_sleep from {:?}", self.state);
        assert_eq!(
            self.jobs_in_system(),
            0,
            "cannot sleep with jobs queued or running"
        );
        let until = now + t_off;
        self.state = MachineState::GoingToSleep { until };
        self.stats.sleep_transitions += 1;
        // Any outstanding timeout becomes irrelevant.
        self.timeout_token += 1;
        until
    }

    /// Completes a wake transition.
    ///
    /// # Panics
    ///
    /// Panics if the server is not `WakingUp`.
    pub fn finish_wake(&mut self) {
        assert!(
            matches!(self.state, MachineState::WakingUp { .. }),
            "finish_wake from {:?}",
            self.state
        );
        self.state = MachineState::On;
    }

    /// Completes a sleep transition; returns `true` if the server must
    /// immediately re-wake because jobs arrived during the transition.
    ///
    /// # Panics
    ///
    /// Panics if the server is not `GoingToSleep`.
    pub fn finish_sleep(&mut self) -> bool {
        assert!(
            matches!(self.state, MachineState::GoingToSleep { .. }),
            "finish_sleep from {:?}",
            self.state
        );
        self.state = MachineState::Sleeping;
        std::mem::take(&mut self.wake_after_sleep)
    }

    /// Records that a job arrived while the server was descending into
    /// sleep, so it must re-wake when the transition completes.
    pub fn request_wake_after_sleep(&mut self) {
        debug_assert!(
            matches!(self.state, MachineState::GoingToSleep { .. }),
            "wake_after_sleep only applies while going to sleep"
        );
        self.wake_after_sleep = true;
    }

    /// Issues a fresh timeout token, invalidating all earlier ones.
    pub fn issue_timeout_token(&mut self) -> u64 {
        self.timeout_token += 1;
        self.timeout_token
    }

    /// Invalidates any outstanding timeout without issuing a new one.
    pub fn cancel_timeout(&mut self) {
        self.timeout_token += 1;
    }

    /// Whether `token` is the most recently issued timeout token.
    pub fn timeout_token_is_current(&self, token: u64) -> bool {
        self.timeout_token == token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_on() -> Server {
        Server::new(ResourceVec::ones(3), true, ReliabilityConfig::paper())
    }

    fn job(id: u64, t: f64, dur: f64, cpu: f64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(t),
            dur,
            ResourceVec::cpu_mem_disk(cpu, 0.1, 0.05),
        )
    }

    #[test]
    fn fcfs_starts_jobs_in_order_while_fitting() {
        let mut s = server_on();
        s.enqueue(job(1, 0.0, 100.0, 0.5));
        s.enqueue(job(2, 0.0, 100.0, 0.4));
        s.enqueue(job(3, 0.0, 100.0, 0.4)); // does not fit after 1 and 2
        let started = s.start_fitting_jobs(SimTime::ZERO);
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].id, JobId(1));
        assert_eq!(started[1].id, JobId(2));
        assert_eq!(s.queue_len(), 1);
        assert!((s.cpu_utilization() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn head_of_line_blocking_is_strict() {
        // Job 2 would fit but job 1 (head) does not: FCFS blocks it.
        let mut s = server_on();
        s.enqueue(job(10, 0.0, 50.0, 0.9));
        let _ = s.start_fitting_jobs(SimTime::ZERO);
        s.enqueue(job(11, 0.0, 50.0, 0.2)); // head, does not fit (0.9+0.2)
        s.enqueue(job(12, 0.0, 50.0, 0.05)); // would fit, must wait
        let started = s.start_fitting_jobs(SimTime::ZERO);
        assert!(started.is_empty());
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn completion_releases_resources_and_unblocks_queue() {
        let mut s = server_on();
        s.enqueue(job(1, 0.0, 10.0, 0.8));
        s.enqueue(job(2, 0.0, 10.0, 0.5));
        let _ = s.start_fitting_jobs(SimTime::ZERO);
        assert_eq!(s.running_len(), 1);
        let done = s.complete_job(JobId(1)).unwrap();
        assert_eq!(done.id, JobId(1));
        let started = s.start_fitting_jobs(SimTime::from_secs(10.0));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, JobId(2));
    }

    #[test]
    fn complete_unknown_job_returns_none() {
        let mut s = server_on();
        assert!(s.complete_job(JobId(42)).is_none());
    }

    #[test]
    fn sleeping_server_starts_nothing() {
        let mut s = Server::new(ResourceVec::ones(3), false, ReliabilityConfig::paper());
        s.enqueue(job(1, 0.0, 10.0, 0.2));
        assert!(s.start_fitting_jobs(SimTime::ZERO).is_empty());
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn energy_integrates_idle_power() {
        let model = PowerModel::paper();
        let mut s = server_on();
        s.account(SimTime::from_secs(100.0), &model);
        assert!((s.stats().energy_joules - 8700.0).abs() < 1e-6);
        assert_eq!(s.stats().idle_seconds, 100.0);
    }

    #[test]
    fn big_server_scales_the_whole_power_curve() {
        // A 2x-capacity server draws 2x idle power, 2x transition power,
        // and integrates 2x the energy of a unit server at the same
        // relative utilization.
        let model = PowerModel::paper();
        let mut big = Server::new(
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            true,
            ReliabilityConfig::paper(),
        );
        assert_eq!(big.peak_scale(), 2.0);
        assert!((big.power_watts(&model) - 2.0 * 87.0).abs() < 1e-9);
        big.account(SimTime::from_secs(100.0), &model);
        assert!((big.stats().energy_joules - 2.0 * 8700.0).abs() < 1e-6);

        // Half a big server's CPU is the same *relative* utilization as
        // half a little server's, so the curve shape is shared.
        big.enqueue(job(1, 100.0, 50.0, 1.0)); // 1.0 of capacity 2.0 = 50%
        let _ = big.start_fitting_jobs(SimTime::from_secs(100.0));
        assert!((big.cpu_utilization() - 0.5).abs() < 1e-9);
        assert!((big.power_watts(&model) - 2.0 * model.active_power(0.5)).abs() < 1e-9);
    }

    #[test]
    fn energy_is_zero_while_sleeping() {
        let model = PowerModel::paper();
        let mut s = Server::new(ResourceVec::ones(3), false, ReliabilityConfig::paper());
        s.account(SimTime::from_secs(50.0), &model);
        assert_eq!(s.stats().energy_joules, 0.0);
        assert_eq!(s.stats().sleep_seconds, 50.0);
    }

    #[test]
    fn transition_draws_transition_power() {
        let model = PowerModel::paper();
        let mut s = Server::new(ResourceVec::ones(3), false, ReliabilityConfig::paper());
        let until = s.begin_wake(SimTime::ZERO, 30.0);
        assert_eq!(until, SimTime::from_secs(30.0));
        s.account(SimTime::from_secs(30.0), &model);
        assert!((s.stats().energy_joules - 145.0 * 30.0).abs() < 1e-6);
        s.finish_wake();
        assert!(s.state().is_on());
    }

    #[test]
    fn wake_after_sleep_round_trip() {
        let mut s = server_on();
        s.begin_sleep(SimTime::ZERO, 30.0);
        s.request_wake_after_sleep();
        let rewake = s.finish_sleep();
        assert!(rewake);
        // Flag is consumed.
        s.begin_wake(SimTime::from_secs(30.0), 30.0);
        s.finish_wake();
        s.begin_sleep(SimTime::from_secs(60.0), 30.0);
        assert!(!s.finish_sleep());
    }

    #[test]
    fn timeout_tokens_invalidate_older_ones() {
        let mut s = server_on();
        let t1 = s.issue_timeout_token();
        assert!(s.timeout_token_is_current(t1));
        let t2 = s.issue_timeout_token();
        assert!(!s.timeout_token_is_current(t1));
        assert!(s.timeout_token_is_current(t2));
        s.cancel_timeout();
        assert!(!s.timeout_token_is_current(t2));
    }

    #[test]
    fn overload_kicks_in_above_threshold() {
        let mut s = server_on();
        s.enqueue(job(1, 0.0, 10.0, 0.95));
        let _ = s.start_fitting_jobs(SimTime::ZERO);
        assert!((s.overload() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn jobs_in_system_integral_tracks_queue_and_running() {
        let model = PowerModel::paper();
        let mut s = server_on();
        s.enqueue(job(1, 0.0, 100.0, 0.5));
        s.enqueue(job(2, 0.0, 100.0, 0.9)); // waits behind job 1
        let _ = s.start_fitting_jobs(SimTime::ZERO);
        s.account(SimTime::from_secs(10.0), &model);
        // 2 jobs in system for 10 s.
        assert!((s.stats().jobs_in_system_integral - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot sleep with jobs")]
    fn sleeping_with_jobs_panics() {
        let mut s = server_on();
        s.enqueue(job(1, 0.0, 10.0, 0.5));
        s.begin_sleep(SimTime::ZERO, 30.0);
    }

    #[test]
    #[should_panic(expected = "begin_wake from")]
    fn waking_an_on_server_panics() {
        let mut s = server_on();
        s.begin_wake(SimTime::ZERO, 30.0);
    }
}
