//! Server power model and power-state machine.
//!
//! The active-mode power curve follows Fan et al. (the model the paper
//! adopts in Eqn. 3): `P(x) = P_idle + (P_peak - P_idle) * (2x - x^1.4)`
//! where `x` is CPU utilization. Sleep power is zero and wake/sleep
//! transitions draw more than idle power.
//!
//! [`PowerModel`] describes one *unit-capacity* server. On heterogeneous
//! fleets each [`Server`](crate::server::Server) scales the whole curve —
//! idle, active, and transition draw alike — by its
//! [`peak_scale`](crate::server::Server::peak_scale) (its CPU capacity), so
//! a 2x-capacity machine draws 2x at the same *relative* utilization and
//! energy totals stay meaningful on asymmetric fleets. Homogeneous
//! clusters have `peak_scale == 1.0` everywhere and reproduce the paper's
//! numbers bit-for-bit.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Analytic server power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle (0% utilization) active power, watts. Paper: 87 W.
    pub idle_watts: f64,
    /// Full-load power, watts. Paper: 145 W.
    pub peak_watts: f64,
    /// Exponent of the calibration term. Paper: 1.4.
    pub exponent: f64,
    /// Power drawn during sleep<->active transitions, watts. The paper
    /// states only that it exceeds idle power; we default to peak power.
    pub transition_watts: f64,
}

impl PowerModel {
    /// The paper's configuration (Section VII-A).
    pub fn paper() -> Self {
        Self {
            idle_watts: 87.0,
            peak_watts: 145.0,
            exponent: 1.4,
            transition_watts: 145.0,
        }
    }

    /// Active power at CPU utilization `x` (clamped to `[0, 1]`), in watts.
    pub fn active_power(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        self.idle_watts + (self.peak_watts - self.idle_watts) * (2.0 * x - x.powf(self.exponent))
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.idle_watts.is_finite() && self.idle_watts >= 0.0) {
            return Err(format!("idle_watts must be >= 0, got {}", self.idle_watts));
        }
        if !(self.peak_watts.is_finite() && self.peak_watts >= self.idle_watts) {
            return Err(format!(
                "peak_watts must be >= idle_watts, got {}",
                self.peak_watts
            ));
        }
        if !(self.exponent.is_finite() && self.exponent > 0.0) {
            return Err(format!("exponent must be positive, got {}", self.exponent));
        }
        if !(self.transition_watts.is_finite() && self.transition_watts >= 0.0) {
            return Err(format!(
                "transition_watts must be >= 0, got {}",
                self.transition_watts
            ));
        }
        Ok(())
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// The power state of a server.
///
/// `On` covers both the paper's "active" (jobs running) and "idle" (no
/// jobs) modes; which one applies is derived from the server's job load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MachineState {
    /// Fully powered; consumes `P(x)` for current utilization `x`.
    On,
    /// Asleep; consumes no power.
    Sleeping,
    /// Transitioning sleep -> active; completes at the given time.
    WakingUp {
        /// When the transition completes.
        until: SimTime,
    },
    /// Transitioning active -> sleep; completes at the given time.
    GoingToSleep {
        /// When the transition completes.
        until: SimTime,
    },
}

impl MachineState {
    /// Whether the server can start jobs right now.
    pub fn is_on(&self) -> bool {
        matches!(self, MachineState::On)
    }

    /// Whether the server is in (or heading into) sleep.
    pub fn is_sleeping_or_descending(&self) -> bool {
        matches!(
            self,
            MachineState::Sleeping | MachineState::GoingToSleep { .. }
        )
    }

    /// Instantaneous power draw under `model` at CPU utilization `x`.
    pub fn power_watts(&self, model: &PowerModel, x: f64) -> f64 {
        match self {
            MachineState::On => model.active_power(x),
            MachineState::Sleeping => 0.0,
            MachineState::WakingUp { .. } | MachineState::GoingToSleep { .. } => {
                model.transition_watts
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_endpoints() {
        let m = PowerModel::paper();
        assert!((m.active_power(0.0) - 87.0).abs() < 1e-9);
        assert!((m.active_power(1.0) - 145.0).abs() < 1e-9);
    }

    #[test]
    fn active_power_is_monotone_on_unit_interval() {
        let m = PowerModel::paper();
        let mut prev = m.active_power(0.0);
        for i in 1..=100 {
            let p = m.active_power(i as f64 / 100.0);
            assert!(p >= prev - 1e-9, "power decreased at {}", i);
            prev = p;
        }
    }

    #[test]
    fn active_power_is_concave_like_midpoint_above_half() {
        // 2x - x^1.4 at x=0.5 gives more than half the idle..peak range.
        let m = PowerModel::paper();
        let mid = m.active_power(0.5);
        assert!(mid > (87.0 + 145.0) / 2.0);
    }

    #[test]
    fn utilization_is_clamped() {
        let m = PowerModel::paper();
        assert_eq!(m.active_power(1.5), m.active_power(1.0));
        assert_eq!(m.active_power(-0.5), m.active_power(0.0));
    }

    #[test]
    fn state_power_dispatch() {
        let m = PowerModel::paper();
        assert_eq!(MachineState::Sleeping.power_watts(&m, 0.5), 0.0);
        assert_eq!(MachineState::On.power_watts(&m, 0.0), 87.0);
        let t = SimTime::from_secs(5.0);
        assert_eq!(
            MachineState::WakingUp { until: t }.power_watts(&m, 0.0),
            145.0
        );
        assert_eq!(
            MachineState::GoingToSleep { until: t }.power_watts(&m, 0.0),
            145.0
        );
    }

    #[test]
    fn validate_accepts_paper_and_rejects_bad() {
        assert!(PowerModel::paper().validate().is_ok());
        let mut bad = PowerModel::paper();
        bad.peak_watts = 10.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn state_predicates() {
        assert!(MachineState::On.is_on());
        assert!(MachineState::Sleeping.is_sleeping_or_descending());
        assert!(MachineState::GoingToSleep {
            until: SimTime::ZERO
        }
        .is_sleeping_or_descending());
        assert!(!MachineState::WakingUp {
            until: SimTime::ZERO
        }
        .is_on());
    }
}
