//! # hierdrl-sim
//!
//! A continuous-time, event-driven simulator of a cloud server cluster,
//! faithful to the system model of the paper (Section III):
//!
//! - `M` homogeneous servers offering `D` resource types;
//! - a job broker dispatches each arriving job (VM request) to one server;
//! - each server executes jobs FCFS, holding the job's resource demand for
//!   its full duration, with strict head-of-line blocking when the next job
//!   does not fit;
//! - servers can sleep (zero power), with `Ton`/`Toff` transition delays
//!   and elevated transition power;
//! - active power follows the Fan et al. curve
//!   `P(x) = P(0%) + (P(100%) − P(0%))(2x − x^1.4)`.
//!
//! Control planes plug in through two traits: [`cluster::Allocator`] (the
//! global tier: one decision per job arrival) and [`cluster::PowerManager`]
//! (the local tier: timeout decisions at the paper's three decision-epoch
//! cases). Reference policies — round-robin, random, least-loaded,
//! first-fit, always-on, sleep-immediately, fixed-timeout — live in
//! [`policies`]. A deterministic front-end [`router::Router`] splits one
//! arrival stream across several independent clusters, the multi-cluster
//! scaling axis the experiment layer grids over.
//!
//! # Examples
//!
//! ```
//! use hierdrl_sim::prelude::*;
//!
//! let jobs: Vec<Job> = (0..50)
//!     .map(|i| Job::new(
//!         JobId(i),
//!         SimTime::from_secs(i as f64 * 20.0),
//!         120.0,
//!         ResourceVec::cpu_mem_disk(0.25, 0.1, 0.02),
//!     ))
//!     .collect();
//!
//! let mut cluster = Cluster::new(ClusterConfig::paper(4), jobs)?;
//! let outcome = cluster.run(
//!     &mut RoundRobinAllocator::new(),
//!     &mut FixedTimeoutPower::new(60.0),
//!     RunLimit::unbounded(),
//! );
//! assert_eq!(outcome.totals.jobs_completed, 50);
//! println!("energy = {:.3} kWh", outcome.totals.energy_kwh());
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod events;
pub mod job;
pub mod metrics;
pub mod policies;
pub mod power;
pub mod resources;
pub mod router;
pub mod server;
pub mod time;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::cluster::{
        Allocator, ArrivalSource, Cluster, ClusterView, PowerManager, RunLimit, TimeoutDecision,
    };
    pub use crate::config::ClusterConfig;
    pub use crate::events::{FleetOp, ServerSpec};
    pub use crate::job::{CompletedJob, Job, JobId, ServerId};
    pub use crate::metrics::{
        ClusterTotals, LatencyStats, RunOutcome, SamplePoint, JOULES_PER_KWH,
    };
    pub use crate::policies::{
        AlwaysOnPower, FirstFitAllocator, FixedTimeoutPower, LeastLoadedAllocator, RandomAllocator,
        RoundRobinAllocator, SleepImmediatelyPower,
    };
    pub use crate::power::{MachineState, PowerModel};
    pub use crate::resources::{ResourceKind, ResourceVec};
    pub use crate::router::{Router, RouterPolicy};
    pub use crate::server::{RunningJob, Server, ServerStats};
    pub use crate::time::SimTime;
}
