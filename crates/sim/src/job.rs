//! Jobs (VM requests) and completion records.

use crate::resources::ResourceVec;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a job within a trace, unique and ordered by arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Identifier of a physical server in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub usize);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server#{}", self.0)
    }
}

/// A job (VM) request: it arrives, is dispatched by the broker to one
/// server, possibly waits in that server's FCFS queue, then holds its
/// resource demand for exactly `duration` seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique job id.
    pub id: JobId,
    /// Arrival time at the job broker.
    pub arrival: SimTime,
    /// Execution time once started, in seconds.
    pub duration: f64,
    /// Resource demand, normalized per-server (each component in `[0, 1]`).
    pub demand: ResourceVec,
}

impl Job {
    /// Creates a job, validating its fields.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive/finite, or any demand component
    /// exceeds `1.0` (a job can never need more than one whole server).
    pub fn new(id: JobId, arrival: SimTime, duration: f64, demand: ResourceVec) -> Self {
        assert!(
            duration.is_finite() && duration > 0.0,
            "job duration must be positive, got {duration}"
        );
        assert!(
            demand.as_slice().iter().all(|&d| d <= 1.0 + 1e-9),
            "job demand {demand} exceeds one server"
        );
        Self {
            id,
            arrival,
            duration,
            demand,
        }
    }
}

/// The lifecycle record of a completed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedJob {
    /// The job id.
    pub id: JobId,
    /// The server that executed it.
    pub server: ServerId,
    /// Arrival time at the broker.
    pub arrival: SimTime,
    /// Time execution began on the server.
    pub started: SimTime,
    /// Completion time.
    pub finished: SimTime,
}

impl CompletedJob {
    /// Total latency: queueing (and any server wake-up) time plus execution
    /// time, i.e. `finished - arrival` (the paper's definition).
    pub fn latency(&self) -> f64 {
        self.finished.since(self.arrival)
    }

    /// Time spent waiting before execution started.
    pub fn waiting_time(&self) -> f64 {
        self.started.since(self.arrival)
    }

    /// Execution time.
    pub fn service_time(&self) -> f64 {
        self.finished.since(self.started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> ResourceVec {
        ResourceVec::cpu_mem_disk(0.5, 0.2, 0.1)
    }

    #[test]
    fn job_construction_validates() {
        let j = Job::new(JobId(1), SimTime::from_secs(10.0), 60.0, demand());
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.duration, 60.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let _ = Job::new(JobId(1), SimTime::ZERO, 0.0, demand());
    }

    #[test]
    #[should_panic(expected = "exceeds one server")]
    fn oversized_demand_rejected() {
        let _ = Job::new(
            JobId(1),
            SimTime::ZERO,
            10.0,
            ResourceVec::cpu_mem_disk(1.5, 0.1, 0.1),
        );
    }

    #[test]
    fn latency_decomposes_into_wait_plus_service() {
        let c = CompletedJob {
            id: JobId(3),
            server: ServerId(0),
            arrival: SimTime::from_secs(100.0),
            started: SimTime::from_secs(130.0),
            finished: SimTime::from_secs(190.0),
        };
        assert_eq!(c.latency(), 90.0);
        assert_eq!(c.waiting_time(), 30.0);
        assert_eq!(c.service_time(), 60.0);
        assert_eq!(c.latency(), c.waiting_time() + c.service_time());
    }
}
