//! Cluster-wide metrics, totals, and time series.

use crate::job::CompletedJob;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Joules per kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3.6e6;

/// Instantaneous snapshot of cluster-wide accumulated quantities.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterTotals {
    /// Simulation time of the snapshot, seconds.
    pub time_s: f64,
    /// Total energy consumed so far, joules.
    pub energy_joules: f64,
    /// `∫ NumVMs(t) dt` summed over the cluster (VM-seconds).
    pub vm_time_integral: f64,
    /// `∫ queued_jobs(t) dt` summed over the cluster (waiting VM-seconds).
    pub queue_time_integral: f64,
    /// `∫ overload(t) dt` summed over the cluster (reliability penalty).
    pub overload_integral: f64,
    /// Instantaneous total power, watts.
    pub power_watts: f64,
    /// Jobs that have arrived.
    pub jobs_arrived: u64,
    /// Jobs that have completed.
    pub jobs_completed: u64,
    /// Sum of completed-job latencies, seconds.
    pub total_latency_s: f64,
    /// Jobs re-placed through the allocator after a server crash. Each
    /// crashed job is requeued exactly once per crash it survives; the
    /// counter exists so conservation checks can separate re-placements
    /// from fresh arrivals (absent from pre-chaos artifacts, hence the
    /// serde default).
    #[serde(default)]
    pub jobs_requeued: u64,
}

impl ClusterTotals {
    /// Total energy in kWh.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_joules / JOULES_PER_KWH
    }

    /// Average power over the run so far, watts.
    pub fn average_power_watts(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_joules / self.time_s
        } else {
            0.0
        }
    }

    /// Mean latency per completed job, seconds.
    pub fn mean_latency_s(&self) -> f64 {
        if self.jobs_completed > 0 {
            self.total_latency_s / self.jobs_completed as f64
        } else {
            0.0
        }
    }

    /// Mean energy per completed job, joules.
    pub fn energy_per_job_joules(&self) -> f64 {
        if self.jobs_completed > 0 {
            self.energy_joules / self.jobs_completed as f64
        } else {
            0.0
        }
    }
}

/// One point of the accumulated-latency / energy-vs-jobs curves the paper
/// plots in Figs. 8 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Number of completed jobs at this sample.
    pub jobs_completed: u64,
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Accumulated job latency, seconds.
    pub total_latency_s: f64,
    /// Accumulated energy, joules.
    pub energy_joules: f64,
}

/// Latency distribution statistics over a set of completed jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of jobs.
    pub count: usize,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median latency, seconds.
    pub p50: f64,
    /// 95th percentile latency, seconds.
    pub p95: f64,
    /// 99th percentile latency, seconds.
    pub p99: f64,
    /// Maximum latency, seconds.
    pub max: f64,
}

impl LatencyStats {
    /// Computes statistics from completed jobs; `None` if empty.
    pub fn from_jobs(jobs: &[CompletedJob]) -> Option<Self> {
        if jobs.is_empty() {
            return None;
        }
        let mut lat: Vec<f64> = jobs.iter().map(|j| j.latency()).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = lat.len();
        let pct = |p: f64| lat[((n as f64 - 1.0) * p).round() as usize];
        Some(Self {
            count: n,
            mean: lat.iter().sum::<f64>() / n as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: lat[n - 1],
        })
    }
}

/// Final outcome of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Totals at the end of the run.
    pub totals: ClusterTotals,
    /// End time of the run.
    pub end_time: SimTime,
    /// Sampled accumulated-latency / energy curves.
    pub samples: Vec<SamplePoint>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, ServerId};

    fn job(latency: f64) -> CompletedJob {
        CompletedJob {
            id: JobId(0),
            server: ServerId(0),
            arrival: SimTime::ZERO,
            started: SimTime::ZERO,
            finished: SimTime::from_secs(latency),
        }
    }

    #[test]
    fn kwh_conversion() {
        let t = ClusterTotals {
            energy_joules: JOULES_PER_KWH,
            ..Default::default()
        };
        assert!((t.energy_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let t = ClusterTotals {
            energy_joules: 1000.0,
            time_s: 10.0,
            ..Default::default()
        };
        assert!((t.average_power_watts() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn average_power_of_empty_run_is_zero() {
        assert_eq!(ClusterTotals::default().average_power_watts(), 0.0);
    }

    #[test]
    fn mean_latency_divides_by_completions() {
        let t = ClusterTotals {
            jobs_completed: 4,
            total_latency_s: 40.0,
            ..Default::default()
        };
        assert_eq!(t.mean_latency_s(), 10.0);
    }

    #[test]
    fn latency_stats_percentiles() {
        let jobs: Vec<CompletedJob> = (1..=100).map(|i| job(i as f64)).collect();
        let s = LatencyStats::from_jobs(&jobs).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.p50, 51.0); // nearest-rank: index round(99 * 0.5) = 50
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn latency_stats_of_empty_is_none() {
        assert!(LatencyStats::from_jobs(&[]).is_none());
    }
}
