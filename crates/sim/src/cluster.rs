//! The event-driven cluster simulator and the control-plane traits that the
//! hierarchical framework's tiers plug into.

use crate::config::ClusterConfig;
use crate::events::{Event, EventQueue, FleetOp};
use crate::job::{CompletedJob, Job, JobId, ServerId};
use crate::metrics::{ClusterTotals, RunOutcome, SamplePoint};
use crate::power::{MachineState, PowerModel};
use crate::server::Server;
use crate::time::SimTime;

/// Cached fleet-wide aggregates, recomputed by one deterministic
/// index-order fold on every fleet mutation (crash, recover, scale change,
/// join, leave) instead of on every view construction. The fold order is
/// identical to the per-view folds it replaced, so the cached values are
/// bitwise identical to the old per-call computation.
#[derive(Debug, Clone)]
struct FleetAgg {
    /// Component-wise capacity sum over live (non-departed) slots.
    total_capacity: crate::resources::ResourceVec,
    /// Component-wise capacity sum over healthy servers only.
    healthy_capacity: crate::resources::ResourceVec,
    /// Sum of healthy servers' power-model multipliers.
    healthy_peak_scale: f64,
    /// Servers in the healthy pool.
    num_healthy: usize,
    /// Live (non-departed) slots.
    num_live: usize,
}

impl FleetAgg {
    fn compute(servers: &[Server], dims: usize) -> Self {
        let mut agg = Self {
            total_capacity: crate::resources::ResourceVec::zeros(dims),
            healthy_capacity: crate::resources::ResourceVec::zeros(dims),
            healthy_peak_scale: 0.0,
            num_healthy: 0,
            num_live: 0,
        };
        for s in servers {
            if s.is_live() {
                agg.total_capacity.add_assign(s.capacity());
                agg.num_live += 1;
            }
            if s.is_healthy() {
                agg.healthy_capacity.add_assign(s.capacity());
                agg.healthy_peak_scale += s.peak_scale();
                agg.num_healthy += 1;
            }
        }
        agg
    }
}

/// Read-only view of the cluster handed to allocators and power managers at
/// decision epochs. All time integrals are up to date as of [`ClusterView::now`].
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    servers: &'a [Server],
    totals: ClusterTotals,
    config: &'a ClusterConfig,
    fleet: &'a FleetAgg,
}

impl<'a> ClusterView<'a> {
    /// Number of server slots (live and departed alike) — the bound on
    /// valid `ServerId`s. Equals the initial `M` until the elastic axis
    /// appends slots; see [`ClusterView::num_live`] for the live count.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Immutable access to a server.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.0]
    }

    /// All servers, indexed by `ServerId`.
    pub fn servers(&self) -> &[Server] {
        self.servers
    }

    /// Cluster-wide accumulated totals at `now`.
    pub fn totals(&self) -> &ClusterTotals {
        &self.totals
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        self.config
    }

    /// Aggregate cluster capacity: component-wise sum of every live
    /// (non-departed) server's capacity vector (`M` per dimension for
    /// fixed homogeneous clusters). Cached; recomputed on fleet mutations.
    pub fn total_capacity(&self) -> crate::resources::ResourceVec {
        self.fleet.total_capacity.clone()
    }

    /// Fleet peak power in watts: the per-unit-server peak scaled by every
    /// *healthy* server's [`Server::peak_scale`]. `M * peak_watts` for
    /// homogeneous clusters with no crashes; drops while servers are
    /// crashed, power-capped, or departed, so normalized rewards always
    /// see the live capacity-scaled fleet.
    pub fn fleet_peak_watts(&self) -> f64 {
        self.config.power.peak_watts * self.fleet.healthy_peak_scale
    }

    /// Number of servers currently in the healthy pool (equals
    /// [`ClusterView::num_servers`] unless the chaos or elastic axis
    /// removed some).
    pub fn num_healthy(&self) -> usize {
        self.fleet.num_healthy
    }

    /// Number of live (non-departed) slots — the elastic axis's fleet
    /// size. Crashed-but-recoverable servers still count as live.
    pub fn num_live(&self) -> usize {
        self.fleet.num_live
    }

    /// Aggregate capacity of the healthy pool only — what routing and
    /// placement can actually use while servers are crashed or degraded.
    pub fn healthy_capacity(&self) -> crate::resources::ResourceVec {
        self.fleet.healthy_capacity.clone()
    }
}

/// The global-tier control interface: dispatches each arriving job (VM
/// request) to a server. Called exactly once per arrival — the paper's
/// event-driven, continuous-time decision epoch.
pub trait Allocator {
    /// Chooses the target server for `job`.
    fn select(&mut self, job: &Job, view: &ClusterView<'_>) -> ServerId;

    /// Called once before the first event of a run. Carried learners must
    /// drop any state anchored to the *previous* run's clock here (pending
    /// transitions, last-arrival timestamps): each run restarts time at
    /// zero, so such state would otherwise fabricate cross-run intervals.
    fn on_run_begin(&mut self) {}

    /// Called once when the run ends, for learners that flush final updates.
    fn on_run_end(&mut self, view: &ClusterView<'_>) {
        let _ = view;
    }

    /// Called right after a [`FleetOp`] is applied (crash, recover, scale
    /// change), with the post-change view — the chaos-axis analogue of the
    /// run-boundary hooks, so learners can resynchronize any cached fleet
    /// shape before the next decision epoch.
    fn on_fleet_change(&mut self, view: &ClusterView<'_>) {
        let _ = view;
    }
}

/// Decision returned by a power manager when a server goes idle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeoutDecision {
    /// Begin the sleep transition immediately (timeout value 0).
    SleepNow,
    /// Sleep if still idle after this many seconds.
    After(f64),
    /// Stay powered on indefinitely.
    StayAwake,
}

/// The local-tier control interface: per-server dynamic power management.
///
/// The callbacks correspond to the paper's three decision-epoch cases:
/// [`PowerManager::on_idle`] is case (1) — the machine enters the idle state
/// with an empty queue; [`PowerManager::on_job_arrival`] covers cases (2)
/// and (3) — a job arrives while the machine is idle or asleep (it is also
/// invoked for arrivals at busy servers so predictors can observe the full
/// arrival stream). `on_job_arrival` runs *before* the job is enqueued, so
/// the view reflects the pre-arrival state.
pub trait PowerManager {
    /// Case (1): `server` is on with no queued or running jobs. Returns the
    /// timeout decision.
    fn on_idle(
        &mut self,
        server: ServerId,
        view: &ClusterView<'_>,
        now: SimTime,
    ) -> TimeoutDecision;

    /// Cases (2)/(3) and bookkeeping: a job is about to be enqueued on
    /// `server`.
    fn on_job_arrival(&mut self, server: ServerId, view: &ClusterView<'_>, now: SimTime) {
        let (_, _, _) = (server, view, now);
    }

    /// Called once before the first event of a run (see
    /// [`Allocator::on_run_begin`]): time restarts at zero, so any
    /// timestamp-anchored state — notably per-server last-arrival marks
    /// feeding inter-arrival predictors — must be dropped here, or a
    /// carried manager fabricates a cross-run inter-arrival gap.
    fn on_run_begin(&mut self) {}

    /// Called once when the run ends.
    fn on_run_end(&mut self, view: &ClusterView<'_>) {
        let _ = view;
    }

    /// Called right after a [`FleetOp`] is applied, with the post-change
    /// view (see [`Allocator::on_fleet_change`]).
    fn on_fleet_change(&mut self, view: &ClusterView<'_>) {
        let _ = view;
    }
}

/// Bounds on a simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimit {
    /// Stop once this many jobs have completed.
    pub max_completed: Option<u64>,
    /// Stop once simulation time passes this point.
    pub max_time: Option<SimTime>,
}

impl RunLimit {
    /// Run until all events drain.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Run until `n` jobs complete.
    pub fn jobs(n: u64) -> Self {
        Self {
            max_completed: Some(n),
            max_time: None,
        }
    }
}

/// A lazily-consumed source of arrival events: any job iterator in
/// non-decreasing arrival order (e.g. a
/// `hierdrl_trace::stream::GeneratorStream`, or a materialized trace's
/// jobs). The cluster holds at most one not-yet-processed job from the
/// source, so a streamed raw-scale run never materializes its trace.
pub struct ArrivalSource {
    iter: Box<dyn Iterator<Item = Job> + Send>,
}

impl ArrivalSource {
    /// Wraps an arbitrary job iterator. Jobs must come in non-decreasing
    /// arrival order with the cluster's resource dimensionality — both are
    /// asserted as the simulation consumes the stream.
    pub fn from_stream(iter: impl Iterator<Item = Job> + Send + 'static) -> Self {
        Self {
            iter: Box::new(iter),
        }
    }

    /// Wraps an already-sorted job vector.
    pub fn from_jobs(jobs: Vec<Job>) -> Self {
        Self::from_stream(jobs.into_iter())
    }

    fn next_job(&mut self) -> Option<Job> {
        self.iter.next()
    }
}

impl std::fmt::Debug for ArrivalSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrivalSource").finish_non_exhaustive()
    }
}

/// Incremental cluster-wide accounting for the `lazy_accounting` mode:
/// accumulated fleet integrals plus the instantaneous fleet rates that
/// advance them, updated in O(1) when a single server changes instead of
/// re-summing all `M` servers per event. Job counts are kept as integers,
/// so only the power and overload rates carry floating-point drift (bounded
/// by one rounding per server touch).
#[derive(Debug)]
struct LazyAgg {
    last: SimTime,
    energy_joules: f64,
    vm_time_integral: f64,
    queue_time_integral: f64,
    overload_integral: f64,
    power_watts: f64,
    overload: f64,
    jobs_in_system: i64,
    queued: i64,
}

impl LazyAgg {
    fn new() -> Self {
        Self {
            last: SimTime::ZERO,
            energy_joules: 0.0,
            vm_time_integral: 0.0,
            queue_time_integral: 0.0,
            overload_integral: 0.0,
            power_watts: 0.0,
            overload: 0.0,
            jobs_in_system: 0,
            queued: 0,
        }
    }

    /// Advances the fleet integrals to `now` at the current rates.
    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last);
        if dt > 0.0 {
            self.energy_joules += self.power_watts * dt;
            self.vm_time_integral += self.jobs_in_system as f64 * dt;
            self.queue_time_integral += self.queued as f64 * dt;
            self.overload_integral += self.overload * dt;
        }
        self.last = now;
    }

    fn add_server(&mut self, s: &Server, model: &PowerModel) {
        self.power_watts += s.power_watts(model);
        self.overload += s.overload();
        self.jobs_in_system += s.jobs_in_system() as i64;
        self.queued += s.queue_len() as i64;
    }

    fn remove_server(&mut self, s: &Server, model: &PowerModel) {
        self.power_watts -= s.power_watts(model);
        self.overload -= s.overload();
        self.jobs_in_system -= s.jobs_in_system() as i64;
        self.queued -= s.queue_len() as i64;
    }
}

/// The continuous-time, event-driven cluster simulator.
///
/// Create one with a [`ClusterConfig`] and a workload (jobs sorted by
/// arrival), then [`Cluster::run`] it under an [`Allocator`] and a
/// [`PowerManager`].
///
/// # Examples
///
/// ```
/// use hierdrl_sim::prelude::*;
///
/// let config = ClusterConfig::paper(4);
/// let jobs = vec![Job::new(
///     JobId(0),
///     SimTime::from_secs(1.0),
///     60.0,
///     ResourceVec::cpu_mem_disk(0.25, 0.1, 0.05),
/// )];
/// let mut cluster = Cluster::new(config, jobs).unwrap();
/// let outcome = cluster.run(
///     &mut RoundRobinAllocator::new(),
///     &mut AlwaysOnPower,
///     RunLimit::unbounded(),
/// );
/// assert_eq!(outcome.totals.jobs_completed, 1);
/// ```
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    servers: Vec<Server>,
    events: EventQueue,
    arrivals: ArrivalSource,
    /// The earliest not-yet-processed arrival; refilled from `arrivals`.
    pending_arrival: Option<Job>,
    /// Latest arrival seen, for the monotone-stream assertion.
    last_arrival: SimTime,
    now: SimTime,
    jobs_arrived: u64,
    /// Jobs re-placed through the allocator after a server crash or leave.
    jobs_requeued: u64,
    /// Fleet ops that targeted an invalid server (out-of-range id,
    /// departed slot, or inapplicable state) and were dropped as
    /// documented no-ops.
    fleet_ops_ignored: u64,
    /// Cached fleet aggregates; recomputed on every fleet mutation.
    fleet: FleetAgg,
    /// Completions counted independently of the (possibly unretained)
    /// `completed` record vector.
    jobs_done: u64,
    completed: Vec<CompletedJob>,
    total_latency: f64,
    samples: Vec<SamplePoint>,
    agg: LazyAgg,
    /// Reusable `(job, finishes)` buffer for scheduling starts.
    started_buf: Vec<(JobId, SimTime)>,
}

impl Cluster {
    /// Builds a cluster and seeds the arrival events from `jobs`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or a job's resource
    /// dimensionality does not match the cluster's.
    pub fn new(config: ClusterConfig, mut jobs: Vec<Job>) -> Result<Self, String> {
        for job in &jobs {
            if job.demand.dims() != config.resource_dims {
                return Err(format!(
                    "{} has {} resource dims, cluster has {}",
                    job.id,
                    job.demand.dims(),
                    config.resource_dims
                ));
            }
        }
        // Stable sort by arrival: exactly the order the event heap used to
        // pop up-front-seeded arrivals — time order, insertion order on ties.
        jobs.sort_by_key(|j| j.arrival);
        Self::from_source(config, ArrivalSource::from_jobs(jobs))
    }

    /// Builds a cluster fed by a lazy arrival source — the raw-scale entry
    /// point, which never holds more than one pending job in memory.
    ///
    /// Event ordering is identical to [`Cluster::new`]: at equal timestamps
    /// an arrival is processed before any dynamic event, matching the
    /// original semantics where all arrivals were seeded into the queue
    /// ahead of every dynamically-scheduled event.
    ///
    /// The source must yield jobs in non-decreasing arrival order with the
    /// cluster's resource dimensionality; violations panic mid-run (a
    /// streamed source cannot be validated up front).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn from_source(config: ClusterConfig, arrivals: ArrivalSource) -> Result<Self, String> {
        config.validate()?;
        let servers: Vec<Server> = (0..config.num_servers)
            .map(|i| {
                Server::new(
                    config.server_capacity(i),
                    config.servers_initially_on,
                    config.reliability,
                )
            })
            .collect();
        let mut agg = LazyAgg::new();
        for s in &servers {
            agg.add_server(s, &config.power);
        }
        let fleet = FleetAgg::compute(&servers, config.resource_dims);
        let mut cluster = Self {
            config,
            servers,
            events: EventQueue::new(),
            arrivals,
            pending_arrival: None,
            last_arrival: SimTime::ZERO,
            now: SimTime::ZERO,
            jobs_arrived: 0,
            jobs_requeued: 0,
            fleet_ops_ignored: 0,
            fleet,
            jobs_done: 0,
            completed: Vec::new(),
            total_latency: 0.0,
            samples: Vec::new(),
            agg,
            started_buf: Vec::new(),
        };
        cluster.refill_arrival();
        Ok(cluster)
    }

    /// Pulls the next job from the arrival source into `pending_arrival`,
    /// asserting stream monotonicity and dimensionality.
    fn refill_arrival(&mut self) {
        debug_assert!(self.pending_arrival.is_none());
        if let Some(job) = self.arrivals.next_job() {
            assert_eq!(
                job.demand.dims(),
                self.config.resource_dims,
                "{} has {} resource dims, cluster has {}",
                job.id,
                job.demand.dims(),
                self.config.resource_dims
            );
            assert!(
                job.arrival >= self.last_arrival,
                "arrival stream must be non-decreasing: {} at {:?} after {:?}",
                job.id,
                job.arrival,
                self.last_arrival
            );
            self.last_arrival = job.arrival;
            self.pending_arrival = Some(job);
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The servers (read-only).
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Completed-job records, in completion order. Empty when
    /// `retain_completed_jobs` is off (see
    /// [`ClusterConfig::retain_completed_jobs`]); use
    /// [`ClusterTotals::jobs_completed`] for the count either way.
    pub fn completed_jobs(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// Sampled accumulated-latency/energy curve points so far.
    pub fn samples(&self) -> &[SamplePoint] {
        &self.samples
    }

    /// Schedules a deterministic fleet mutation (the chaos axis) at `time`.
    /// Call before [`Cluster::run`]; at equal timestamps arrivals are
    /// processed first, so fleet changes fire *between* arrivals.
    pub fn schedule_fleet_op(&mut self, time: SimTime, op: FleetOp) {
        self.events.push(time, Event::FleetChange { op });
    }

    fn account_all(&mut self, now: SimTime) {
        for s in &mut self.servers {
            s.account(now, &self.config.power);
        }
    }

    /// Brackets a single-server mutation in lazy mode: advance the fleet
    /// integrals to `now`, bring the server's own integrals up to date, and
    /// subtract its (pre-mutation) rates from the fleet rates. A no-op in
    /// eager mode, where `account_all` already ran this event.
    fn touch_begin(&mut self, sid: ServerId) {
        if !self.config.lazy_accounting {
            return;
        }
        self.agg.advance(self.now);
        let server = &mut self.servers[sid.0];
        server.account(self.now, &self.config.power);
        self.agg.remove_server(server, &self.config.power);
    }

    /// Closes a [`Cluster::touch_begin`] bracket: adds the server's
    /// post-mutation rates back into the fleet rates.
    fn touch_end(&mut self, sid: ServerId) {
        if !self.config.lazy_accounting {
            return;
        }
        self.agg
            .add_server(&self.servers[sid.0], &self.config.power);
    }

    fn totals(&self) -> ClusterTotals {
        let mut t = ClusterTotals {
            time_s: self.now.as_secs(),
            jobs_arrived: self.jobs_arrived,
            jobs_requeued: self.jobs_requeued,
            jobs_completed: self.jobs_done,
            total_latency_s: self.total_latency,
            ..Default::default()
        };
        if self.config.lazy_accounting {
            // O(1): the running integrals, extrapolated from the last fleet
            // advance to `now` at the current (constant) rates.
            let dt = self.now.since(self.agg.last);
            t.energy_joules = self.agg.energy_joules + self.agg.power_watts * dt;
            t.vm_time_integral = self.agg.vm_time_integral + self.agg.jobs_in_system as f64 * dt;
            t.queue_time_integral = self.agg.queue_time_integral + self.agg.queued as f64 * dt;
            t.overload_integral = self.agg.overload_integral + self.agg.overload * dt;
            t.power_watts = self.agg.power_watts;
            return t;
        }
        for s in &self.servers {
            let st = s.stats();
            t.energy_joules += st.energy_joules;
            t.vm_time_integral += st.jobs_in_system_integral;
            t.queue_time_integral += st.queue_integral;
            t.overload_integral += st.overload_integral;
            t.power_watts += s.power_watts(&self.config.power);
        }
        t
    }

    /// A fresh view with up-to-date totals (accounting must already have
    /// advanced to `self.now`).
    fn view(&self) -> ClusterView<'_> {
        ClusterView {
            now: self.now,
            servers: &self.servers,
            totals: self.totals(),
            config: &self.config,
            fleet: &self.fleet,
        }
    }

    /// Fleet ops dropped as documented no-ops because they targeted an
    /// out-of-range id, a departed slot, or an inapplicable state (see
    /// [`FleetOp`]).
    pub fn fleet_ops_ignored(&self) -> u64 {
        self.fleet_ops_ignored
    }

    /// Current live (non-departed) fleet size.
    pub fn num_live(&self) -> usize {
        self.fleet.num_live
    }

    /// Re-derives the cached fleet aggregates after a fleet mutation.
    fn refresh_fleet_agg(&mut self) {
        self.fleet = FleetAgg::compute(&self.servers, self.config.resource_dims);
    }

    /// Public snapshot of current cluster totals.
    pub fn current_totals(&mut self) -> ClusterTotals {
        let now = self.now;
        if self.config.lazy_accounting {
            self.agg.advance(now);
        }
        self.account_all(now);
        self.totals()
    }

    /// Starts whatever fits on `sid` and schedules the finish events,
    /// through the reusable `started_buf` (no per-event allocation).
    fn start_and_schedule(&mut self, sid: ServerId) {
        self.started_buf.clear();
        self.servers[sid.0].start_fitting_jobs_into(self.now, &mut self.started_buf);
        for &(job, finishes) in &self.started_buf {
            self.events
                .push(finishes, Event::JobFinish { server: sid, job });
        }
    }

    fn handle_idle_decision(&mut self, sid: ServerId, power: &mut dyn PowerManager) {
        let decision = {
            let view = self.view();
            power.on_idle(sid, &view, self.now)
        };
        if !self.servers[sid.0].is_idle() {
            // The power manager cannot change server state, so this only
            // guards against future refactors.
            return;
        }
        match decision {
            TimeoutDecision::SleepNow => {
                self.touch_begin(sid);
                let until = self.servers[sid.0].begin_sleep(self.now, self.config.t_off);
                self.events
                    .push(until, Event::SleepComplete { server: sid });
                self.touch_end(sid);
            }
            TimeoutDecision::After(seconds) => {
                assert!(
                    seconds.is_finite() && seconds >= 0.0,
                    "timeout must be finite and non-negative, got {seconds}"
                );
                // A token changes no power/job rates: no touch needed.
                let token = self.servers[sid.0].issue_timeout_token();
                self.events.push(
                    self.now + seconds,
                    Event::TimeoutFired { server: sid, token },
                );
            }
            TimeoutDecision::StayAwake => {}
        }
    }

    /// Cyclically scans from `start` for a healthy server. The identity map
    /// while no server is crashed, so fault-free runs are untouched.
    ///
    /// # Panics
    ///
    /// Panics if every server is crashed (the fleet-op layer rejects the
    /// crash that would get here, so this is a backstop).
    fn next_healthy_from(&self, start: ServerId) -> ServerId {
        let n = self.servers.len();
        for off in 0..n {
            let i = (start.0 + off) % n;
            if self.servers[i].is_healthy() {
                return ServerId(i);
            }
        }
        panic!("no healthy servers left in the cluster");
    }

    fn handle_arrival(
        &mut self,
        job: Job,
        allocator: &mut dyn Allocator,
        power: &mut dyn PowerManager,
    ) {
        self.place_job(job, allocator, power, true);
    }

    /// Places one job through the allocator: the body of every arrival and
    /// of every post-crash re-placement. `fresh_arrival` distinguishes the
    /// two for conservation accounting — a requeued job was already counted
    /// as arrived, and is counted in `jobs_requeued` instead.
    fn place_job(
        &mut self,
        job: Job,
        allocator: &mut dyn Allocator,
        power: &mut dyn PowerManager,
        fresh_arrival: bool,
    ) {
        if fresh_arrival {
            self.jobs_arrived += 1;
        } else {
            self.jobs_requeued += 1;
        }
        let sid = {
            let view = self.view();
            let sid = allocator.select(&job, &view);
            assert!(
                sid.0 < self.servers.len(),
                "allocator chose {sid} out of {} servers",
                self.servers.len()
            );
            // A policy unaware of the chaos axis may still point at a
            // crashed machine; remap to the next healthy one.
            let sid = self.next_healthy_from(sid);
            // Power manager observes the arrival before the job lands.
            power.on_job_arrival(sid, &view, self.now);
            sid
        };
        let t_on = self.config.t_on;
        self.touch_begin(sid);
        let server = &mut self.servers[sid.0];
        server.enqueue(job);
        match server.state() {
            MachineState::On => {
                // A pending idle timeout no longer applies.
                server.cancel_timeout();
                self.start_and_schedule(sid);
            }
            MachineState::Sleeping => {
                let until = server.begin_wake(self.now, t_on);
                self.events.push(until, Event::WakeComplete { server: sid });
            }
            MachineState::WakingUp { .. } => {
                // Already waking; the job starts when the wake completes.
            }
            MachineState::GoingToSleep { .. } => {
                // Fig. 4(a): the transition cannot be aborted; re-wake after.
                server.request_wake_after_sleep();
            }
        }
        self.touch_end(sid);
    }

    fn handle_finish(
        &mut self,
        sid: ServerId,
        job: crate::job::JobId,
        power: &mut dyn PowerManager,
    ) {
        self.touch_begin(sid);
        let server = &mut self.servers[sid.0];
        // Finish-time-checked: a job requeued by a crash may be running
        // again under the same id with a later finish, which makes the
        // original finish event stale even though the id is present.
        let Some(run) = server.complete_job_at(job, self.now) else {
            self.touch_end(sid);
            return; // stale event
        };
        let record = CompletedJob {
            id: run.id,
            server: sid,
            arrival: run.arrival,
            started: run.started,
            finished: self.now,
        };
        self.total_latency += record.latency();
        self.jobs_done += 1;
        if self.config.retain_completed_jobs {
            self.completed.push(record);
        }

        self.start_and_schedule(sid);
        self.touch_end(sid);

        if (self.jobs_done as usize).is_multiple_of(self.config.sample_every) {
            let totals = self.totals();
            self.samples.push(SamplePoint {
                jobs_completed: totals.jobs_completed,
                time_s: totals.time_s,
                total_latency_s: totals.total_latency_s,
                energy_joules: totals.energy_joules,
            });
        }

        if self.servers[sid.0].is_idle() {
            self.handle_idle_decision(sid, power);
        }
    }

    fn handle_wake_complete(&mut self, sid: ServerId, power: &mut dyn PowerManager) {
        // A crash abandons in-flight transitions, so a transition-complete
        // event is only live if the server is still mid-transition *due at
        // exactly this time*; anything else is a stale pre-crash event.
        if !matches!(self.servers[sid.0].state(), MachineState::WakingUp { until } if until == self.now)
        {
            return;
        }
        self.touch_begin(sid);
        self.servers[sid.0].finish_wake();
        self.start_and_schedule(sid);
        self.touch_end(sid);
        if self.servers[sid.0].is_idle() {
            self.handle_idle_decision(sid, power);
        }
    }

    fn handle_sleep_complete(&mut self, sid: ServerId) {
        if !matches!(self.servers[sid.0].state(), MachineState::GoingToSleep { until } if until == self.now)
        {
            return; // stale pre-crash event
        }
        let t_on = self.config.t_on;
        self.touch_begin(sid);
        let server = &mut self.servers[sid.0];
        if server.finish_sleep() {
            let until = server.begin_wake(self.now, t_on);
            self.events.push(until, Event::WakeComplete { server: sid });
        }
        self.touch_end(sid);
    }

    /// Whether `sid` names a live (in-range, non-departed) slot; counts
    /// the op as ignored otherwise.
    fn validate_fleet_target(&mut self, sid: ServerId) -> bool {
        if sid.0 < self.servers.len() && self.servers[sid.0].is_live() {
            true
        } else {
            self.fleet_ops_ignored += 1;
            false
        }
    }

    /// Applies a scheduled fleet mutation. A crash (or leave) drains the
    /// victim's queued and running jobs and re-places each exactly once
    /// through the allocator (counted in `jobs_requeued`, not
    /// `jobs_arrived`); running jobs restart from scratch, keeping their
    /// original arrival so the lost work shows up as latency. A join
    /// re-uses the lowest-index departed slot, or appends a fresh one
    /// while the fleet is below [`ClusterConfig::effective_max`]. Ops
    /// targeting an invalid server — out-of-range id, departed slot, or an
    /// inapplicable state (recover of a healthy server, crash of a crashed
    /// one, join at the cap) — are documented no-ops counted in
    /// [`Cluster::fleet_ops_ignored`]. Both control tiers are notified via
    /// their `on_fleet_change` hooks after the mutation (and after any
    /// re-placements) so they see the settled fleet.
    ///
    /// # Panics
    ///
    /// Panics on a crash or leave of the last healthy server (the
    /// simulation would otherwise hang with unplaceable jobs).
    fn apply_fleet_op(
        &mut self,
        op: FleetOp,
        allocator: &mut dyn Allocator,
        power: &mut dyn PowerManager,
    ) {
        let mut joined_idle: Option<ServerId> = None;
        match op {
            FleetOp::Crash(sid) => {
                if !self.validate_fleet_target(sid) || !self.servers[sid.0].is_healthy() {
                    self.note_inapplicable(sid);
                    return;
                }
                self.assert_not_last_healthy(sid, "crash");
                self.touch_begin(sid);
                let orphans = self.servers[sid.0].crash(self.now);
                self.touch_end(sid);
                self.refresh_fleet_agg();
                for job in orphans {
                    self.place_job(job, allocator, power, false);
                }
            }
            FleetOp::Recover(sid) => {
                if !self.validate_fleet_target(sid) || self.servers[sid.0].is_healthy() {
                    self.note_inapplicable(sid);
                    return;
                }
                // Healthy-pool membership changes no power/job rates, so no
                // accounting bracket is needed.
                self.servers[sid.0].recover();
                self.refresh_fleet_agg();
            }
            FleetOp::SetScale { server: sid, scale } => {
                if !self.validate_fleet_target(sid) {
                    return;
                }
                self.touch_begin(sid);
                self.servers[sid.0].set_degraded_scale(scale);
                // Restoring capacity can unblock the FCFS head; a shrink
                // starts nothing (fits are only re-checked, never revoked).
                self.start_and_schedule(sid);
                self.touch_end(sid);
                self.refresh_fleet_agg();
            }
            FleetOp::Join(spec) => match self.apply_join(spec) {
                Some(sid) => joined_idle = Some(sid).filter(|&s| self.servers[s.0].is_idle()),
                None => return,
            },
            FleetOp::Leave(sid) => {
                if !self.validate_fleet_target(sid) || !self.servers[sid.0].is_healthy() {
                    self.note_inapplicable(sid);
                    return;
                }
                self.assert_not_last_healthy(sid, "leave");
                self.touch_begin(sid);
                let orphans = self.servers[sid.0].depart(self.now);
                self.touch_end(sid);
                self.refresh_fleet_agg();
                for job in orphans {
                    self.place_job(job, allocator, power, false);
                }
            }
        }
        {
            let view = self.view();
            allocator.on_fleet_change(&view);
            power.on_fleet_change(&view);
        }
        // A joined server that comes up on and idle gets its case-(1)
        // decision epoch, exactly like initially-on servers at t = 0.
        if let Some(sid) = joined_idle {
            self.handle_idle_decision(sid, power);
        }
    }

    /// Counts an in-range op whose target state made it inapplicable. The
    /// `validate_fleet_target` short-circuit already counted out-of-range
    /// and departed targets.
    fn note_inapplicable(&mut self, sid: ServerId) {
        if sid.0 < self.servers.len() && self.servers[sid.0].is_live() {
            self.fleet_ops_ignored += 1;
        }
    }

    /// Backstop against draining the fleet: panics if `sid` is the last
    /// healthy server.
    fn assert_not_last_healthy(&self, sid: ServerId, what: &str) {
        let others_healthy = self
            .servers
            .iter()
            .enumerate()
            .any(|(i, s)| i != sid.0 && s.is_healthy());
        assert!(
            others_healthy,
            "cannot {what} {sid}: it is the last healthy server in the cluster"
        );
    }

    /// Admits a joining server: re-uses the lowest-index departed slot, or
    /// appends a new one below the `effective_max` cap. Returns the slot
    /// id, or `None` (counted as ignored) when the spec is invalid or the
    /// fleet is at its cap.
    fn apply_join(&mut self, spec: crate::events::ServerSpec) -> Option<ServerId> {
        let valid = spec.capacity.dims() == self.config.resource_dims
            && spec.capacity.as_slice().iter().all(|&c| c > 0.0);
        if !valid {
            self.fleet_ops_ignored += 1;
            return None;
        }
        let reusable = self.servers.iter().position(|s| !s.is_live());
        let sid = match reusable {
            Some(i) => {
                let sid = ServerId(i);
                self.touch_begin(sid);
                self.servers[i].rejoin(spec.capacity, spec.initially_on);
                self.touch_end(sid);
                sid
            }
            None if self.servers.len() < self.config.effective_max() => {
                let sid = ServerId(self.servers.len());
                let mut server =
                    Server::new(spec.capacity, spec.initially_on, self.config.reliability);
                // The server exists only from `now` on: advance the fleet
                // integrals first, then start its clock at `now` so it
                // never retroactively integrates the pre-join interval.
                server.reset_account_clock(self.now);
                if self.config.lazy_accounting {
                    self.agg.advance(self.now);
                    self.agg.add_server(&server, &self.config.power);
                }
                self.servers.push(server);
                sid
            }
            None => {
                self.fleet_ops_ignored += 1;
                return None;
            }
        };
        self.refresh_fleet_agg();
        Some(sid)
    }

    fn handle_timeout(&mut self, sid: ServerId, token: u64) {
        let t_off = self.config.t_off;
        if self.servers[sid.0].timeout_token_is_current(token) && self.servers[sid.0].is_idle() {
            self.touch_begin(sid);
            let until = self.servers[sid.0].begin_sleep(self.now, t_off);
            self.events
                .push(until, Event::SleepComplete { server: sid });
            self.touch_end(sid);
        }
    }

    /// Runs the simulation under the given control policies until `limit`
    /// is reached or all events drain.
    pub fn run(
        &mut self,
        allocator: &mut dyn Allocator,
        power: &mut dyn PowerManager,
        limit: RunLimit,
    ) -> RunOutcome {
        // The clock restarts at zero: carried learners drop timestamp-
        // anchored state *before* the first decision epoch below (which
        // already consults the power manager for initially-idle servers).
        allocator.on_run_begin();
        power.on_run_begin();
        // Initially-on idle servers get their case-(1) decision epoch at
        // t = 0; otherwise a server that never receives a job would idle
        // forever without the power manager ever being consulted.
        for i in 0..self.servers.len() {
            if self.servers[i].is_idle() {
                self.handle_idle_decision(ServerId(i), power);
            }
        }
        loop {
            // An arrival at time t is processed before any dynamic event at
            // t: originally every arrival was seeded into the queue ahead of
            // all dynamically-scheduled events, so ties broke its way.
            let take_arrival = match (self.pending_arrival.as_ref(), self.events.peek_time()) {
                (Some(job), Some(t)) => job.arrival <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (time, event) = if take_arrival {
                let job = self.pending_arrival.take().expect("checked above");
                self.refill_arrival();
                (job.arrival, Event::JobArrival(job))
            } else {
                self.events.pop().expect("peeked above")
            };
            if let Some(max_t) = limit.max_time {
                if time > max_t {
                    // Account up to the boundary and stop.
                    self.now = max_t;
                    if self.config.lazy_accounting {
                        self.agg.advance(max_t);
                    }
                    self.account_all(max_t);
                    break;
                }
            }
            debug_assert!(time >= self.now, "event time went backwards");
            self.now = time;
            if !self.config.lazy_accounting {
                self.account_all(time);
            }
            match event {
                Event::JobArrival(job) => self.handle_arrival(job, allocator, power),
                Event::FleetChange { op } => self.apply_fleet_op(op, allocator, power),
                Event::JobFinish { server, job } => self.handle_finish(server, job, power),
                Event::WakeComplete { server } => self.handle_wake_complete(server, power),
                Event::SleepComplete { server } => self.handle_sleep_complete(server),
                Event::TimeoutFired { server, token } => self.handle_timeout(server, token),
            }
            if let Some(max_jobs) = limit.max_completed {
                if self.jobs_done >= max_jobs {
                    break;
                }
            }
        }
        if self.config.lazy_accounting {
            // Bring fleet integrals and every server's own statistics up to
            // the end of the run, so per-server stats are exact for
            // downstream consumers.
            self.agg.advance(self.now);
            self.account_all(self.now);
        }
        let view = self.view();
        allocator.on_run_end(&view);
        power.on_run_end(&view);
        RunOutcome {
            totals: self.totals(),
            end_time: self.now,
            samples: self.samples.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::policies::{
        AlwaysOnPower, FixedTimeoutPower, RoundRobinAllocator, SleepImmediatelyPower,
    };
    use crate::resources::ResourceVec;

    fn job(id: u64, t: f64, dur: f64, cpu: f64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(t),
            dur,
            ResourceVec::cpu_mem_disk(cpu, 0.1, 0.05),
        )
    }

    fn cluster(n: usize, jobs: Vec<Job>) -> Cluster {
        Cluster::new(ClusterConfig::paper(n), jobs).unwrap()
    }

    #[test]
    fn single_job_completes_with_pure_service_latency() {
        let mut c = cluster(2, vec![job(0, 10.0, 60.0, 0.5)]);
        let out = c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        assert_eq!(out.totals.jobs_completed, 1);
        let rec = &c.completed_jobs()[0];
        assert_eq!(rec.latency(), 60.0);
        assert_eq!(rec.waiting_time(), 0.0);
    }

    #[test]
    fn fcfs_queueing_adds_latency() {
        // Two 0.8-CPU jobs on one server: second waits for the first.
        let jobs = vec![job(0, 0.0, 100.0, 0.8), job(1, 0.0, 100.0, 0.8)];
        let mut c = cluster(1, jobs);
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        let recs = c.completed_jobs();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].latency(), 100.0);
        assert_eq!(recs[1].latency(), 200.0);
        assert_eq!(recs[1].waiting_time(), 100.0);
    }

    #[test]
    fn sleeping_server_adds_wake_latency() {
        let mut config = ClusterConfig::paper(1);
        config.servers_initially_on = false;
        let mut c = Cluster::new(config, vec![job(0, 0.0, 60.0, 0.5)]).unwrap();
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        // Latency = Ton (30 s wake) + 60 s service.
        assert_eq!(c.completed_jobs()[0].latency(), 90.0);
    }

    #[test]
    fn always_on_energy_includes_idle_tail_up_to_last_event() {
        let mut c = cluster(1, vec![job(0, 0.0, 100.0, 0.0)]);
        let out = c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        // One server on for 100 s at ~idle power (0 CPU demand job).
        assert!((out.totals.energy_joules - 87.0 * 100.0).abs() < 1.0);
    }

    #[test]
    fn sleep_immediately_powers_down_after_completion() {
        let mut config = ClusterConfig::paper(1);
        config.servers_initially_on = false;
        let jobs = vec![job(0, 0.0, 100.0, 0.5)];
        let mut c = Cluster::new(config, jobs).unwrap();
        let out = c.run(
            &mut RoundRobinAllocator::new(),
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        );
        let s = &c.servers()[0];
        assert!(matches!(s.state(), MachineState::Sleeping));
        assert_eq!(s.stats().wake_transitions, 1);
        assert_eq!(s.stats().sleep_transitions, 1);
        // Energy: 30 s wake + 100 s active + 30 s sleep transition.
        let expected = crate::power::PowerModel::paper().active_power(0.5) * 100.0 + 145.0 * 60.0;
        assert!((out.totals.energy_joules - expected).abs() < 1.0);
    }

    #[test]
    fn job_arriving_during_sleep_transition_waits_for_full_cycle() {
        // Fig. 4(a): job arrives during Toff; server completes sleep, then
        // wakes, then serves.
        let mut config = ClusterConfig::paper(1);
        config.servers_initially_on = false;
        let jobs = vec![job(0, 0.0, 10.0, 0.5), job(1, 50.0, 10.0, 0.5)];
        let mut c = Cluster::new(config, jobs).unwrap();
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        );
        let recs = c.completed_jobs();
        // Job 0: wake 0..30, runs 30..40. Sleep transition 40..70.
        // Job 1 arrives at 50 (mid-transition): sleep completes at 70,
        // wake 70..100, job 1 runs 100..110.
        assert_eq!(recs[0].finished.as_secs(), 40.0);
        assert_eq!(recs[1].finished.as_secs(), 110.0);
        assert_eq!(recs[1].latency(), 60.0);
    }

    #[test]
    fn fixed_timeout_keeps_server_on_for_bursts() {
        // Second job arrives 20 s after first completes; 30 s timeout keeps
        // the server awake so no wake penalty is paid.
        let jobs = vec![job(0, 0.0, 10.0, 0.5), job(1, 30.0, 10.0, 0.5)];
        let mut c = cluster(1, jobs);
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(30.0),
            RunLimit::unbounded(),
        );
        let recs = c.completed_jobs();
        assert_eq!(recs[1].latency(), 10.0, "no wake penalty expected");
        assert_eq!(c.servers()[0].stats().sleep_transitions, 1); // after job 1
    }

    #[test]
    fn fixed_timeout_sleeps_after_quiet_period() {
        let jobs = vec![job(0, 0.0, 10.0, 0.5), job(1, 200.0, 10.0, 0.5)];
        let mut c = cluster(1, jobs);
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(30.0),
            RunLimit::unbounded(),
        );
        let recs = c.completed_jobs();
        // Sleeps at 10+30=40 (until 70). Job 1 arrives 200, wakes by 230.
        assert_eq!(recs[1].latency(), 40.0);
        assert_eq!(c.servers()[0].stats().wake_transitions, 1);
    }

    #[test]
    fn round_robin_spreads_jobs() {
        let jobs: Vec<Job> = (0..4).map(|i| job(i, i as f64, 50.0, 0.3)).collect();
        let mut c = cluster(4, jobs);
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        for s in c.servers() {
            assert_eq!(s.stats().jobs_completed, 1);
        }
    }

    #[test]
    fn max_completed_limit_stops_early() {
        let jobs: Vec<Job> = (0..10).map(|i| job(i, i as f64, 5.0, 0.3)).collect();
        let mut c = cluster(2, jobs);
        let out = c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::jobs(3),
        );
        assert_eq!(out.totals.jobs_completed, 3);
    }

    #[test]
    fn max_time_limit_accounts_to_boundary() {
        let jobs = vec![job(0, 0.0, 1000.0, 0.0)];
        let mut c = cluster(1, jobs);
        let out = c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit {
                max_completed: None,
                max_time: Some(SimTime::from_secs(500.0)),
            },
        );
        assert_eq!(out.totals.jobs_completed, 0);
        assert!((out.totals.energy_joules - 87.0 * 500.0).abs() < 1.0);
    }

    #[test]
    fn energy_equals_sum_of_server_energies() {
        let jobs: Vec<Job> = (0..20).map(|i| job(i, i as f64 * 3.0, 40.0, 0.4)).collect();
        let mut c = cluster(3, jobs);
        let out = c.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(10.0),
            RunLimit::unbounded(),
        );
        let sum: f64 = c.servers().iter().map(|s| s.stats().energy_joules).sum();
        assert!((out.totals.energy_joules - sum).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_cluster_integrates_capacity_scaled_energy() {
        // One 2x server and one unit server, both on and idle for 100 s:
        // the fleet burns 3x a unit server's idle energy, and the view
        // reports the aggregate capacity and fleet peak.
        let mut config = ClusterConfig::paper(2);
        config.server_capacities = Some(vec![
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            ResourceVec::ones(3),
        ]);
        let mut c = Cluster::new(config, vec![job(0, 0.0, 100.0, 0.0)]).unwrap();
        let out = c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        assert!((out.totals.energy_joules - 3.0 * 87.0 * 100.0).abs() < 1.0);
        let view_capacity = {
            c.account_all(SimTime::from_secs(100.0));
            let view = c.view();
            assert!((view.fleet_peak_watts() - 3.0 * 145.0).abs() < 1e-9);
            view.total_capacity()
        };
        assert_eq!(view_capacity, ResourceVec::new(&[3.0, 3.0, 3.0]));
    }

    #[test]
    fn mismatched_job_dims_rejected() {
        let bad = Job::new(JobId(0), SimTime::ZERO, 10.0, ResourceVec::new(&[0.5]));
        assert!(Cluster::new(ClusterConfig::paper(2), vec![bad]).is_err());
    }

    /// Deterministic pseudo-random workload with arrival ties and
    /// sleep/wake churn, to exercise event-ordering edge cases.
    fn churn_jobs(n: u64) -> Vec<Job> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|i| {
                // Integral arrival times (with repeats) and durations that
                // collide exactly with 30 s timeout/transition boundaries.
                let t = (i / 2) as f64 * 10.0;
                let dur = 10.0 + (next() * 4.0).floor() * 10.0;
                job(i, t, dur, 0.2 + next() * 0.5)
            })
            .collect()
    }

    #[test]
    fn streamed_source_is_bitwise_identical_to_vec_input() {
        let jobs = churn_jobs(60);
        let config = ClusterConfig::paper(3);

        let mut vec_cluster = Cluster::new(config.clone(), jobs.clone()).unwrap();
        let vec_out = vec_cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(30.0),
            RunLimit::unbounded(),
        );

        let source = ArrivalSource::from_stream(jobs.into_iter());
        let mut stream_cluster = Cluster::from_source(config, source).unwrap();
        let stream_out = stream_cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(30.0),
            RunLimit::unbounded(),
        );

        assert_eq!(vec_out.totals, stream_out.totals);
        assert_eq!(vec_out.end_time, stream_out.end_time);
        assert_eq!(vec_out.samples, stream_out.samples);
        assert_eq!(
            vec_cluster.completed_jobs(),
            stream_cluster.completed_jobs()
        );
        for (a, b) in vec_cluster.servers().iter().zip(stream_cluster.servers()) {
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn unsorted_vec_input_matches_sorted_input() {
        // Distinct arrival times: the event heap used to restore time order
        // regardless of input order, and the stable sort must do the same.
        let sorted: Vec<Job> = (0..40).map(|i| job(i, i as f64 * 7.0, 25.0, 0.4)).collect();
        let mut shuffled = sorted.clone();
        shuffled.reverse();
        let mut a = Cluster::new(ClusterConfig::paper(3), sorted).unwrap();
        let mut b = Cluster::new(ClusterConfig::paper(3), shuffled).unwrap();
        let out_a = a.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(30.0),
            RunLimit::unbounded(),
        );
        let out_b = b.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(30.0),
            RunLimit::unbounded(),
        );
        assert_eq!(out_a.totals, out_b.totals);
        assert_eq!(a.completed_jobs(), b.completed_jobs());
    }

    #[test]
    fn lazy_accounting_matches_eager_within_float_tolerance() {
        let jobs = churn_jobs(80);
        let mut eager_cfg = ClusterConfig::paper(4);
        eager_cfg.sample_every = 13;
        let mut lazy_cfg = eager_cfg.clone();
        lazy_cfg.lazy_accounting = true;

        let run = |config: ClusterConfig, jobs: Vec<Job>| {
            let mut c = Cluster::new(config, jobs).unwrap();
            let out = c.run(
                &mut RoundRobinAllocator::new(),
                &mut FixedTimeoutPower::new(30.0),
                RunLimit::unbounded(),
            );
            (out, c)
        };
        let (eager_out, eager_c) = run(eager_cfg, jobs.clone());
        let (lazy_out, lazy_c) = run(lazy_cfg, jobs);

        let close = |a: f64, b: f64, what: &str| {
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() <= 1e-9 * scale,
                "{what}: eager {a} vs lazy {b}"
            );
        };
        let (e, l) = (&eager_out.totals, &lazy_out.totals);
        assert_eq!(e.jobs_arrived, l.jobs_arrived);
        assert_eq!(e.jobs_completed, l.jobs_completed);
        assert_eq!(e.time_s, l.time_s);
        assert_eq!(e.total_latency_s, l.total_latency_s, "latency is exact");
        close(e.energy_joules, l.energy_joules, "energy");
        close(e.vm_time_integral, l.vm_time_integral, "vm time");
        close(e.queue_time_integral, l.queue_time_integral, "queue time");
        close(e.overload_integral, l.overload_integral, "overload");
        close(e.power_watts, l.power_watts, "power");
        // The completion stream itself (which jobs ran where, when) is
        // identical: accounting never influences dynamics.
        assert_eq!(eager_c.completed_jobs(), lazy_c.completed_jobs());
        assert_eq!(eager_out.samples.len(), lazy_out.samples.len());
        for (a, b) in eager_out.samples.iter().zip(&lazy_out.samples) {
            assert_eq!(a.jobs_completed, b.jobs_completed);
            close(a.energy_joules, b.energy_joules, "sample energy");
        }
        // After the run, lazy per-server integrals are fully accounted too.
        for (a, b) in eager_c.servers().iter().zip(lazy_c.servers()) {
            close(
                a.stats().energy_joules,
                b.stats().energy_joules,
                "server energy",
            );
            assert_eq!(a.stats().jobs_completed, b.stats().jobs_completed);
        }
    }

    #[test]
    fn retention_off_drops_records_but_keeps_every_aggregate() {
        let jobs = churn_jobs(50);
        let mut retain_cfg = ClusterConfig::paper(2);
        retain_cfg.sample_every = 7;
        let mut drop_cfg = retain_cfg.clone();
        drop_cfg.retain_completed_jobs = false;

        let mut retained = Cluster::new(retain_cfg, jobs.clone()).unwrap();
        let out_retained = retained.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(30.0),
            RunLimit::unbounded(),
        );
        let mut dropped = Cluster::new(drop_cfg, jobs).unwrap();
        let out_dropped = dropped.run(
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(30.0),
            RunLimit::unbounded(),
        );

        assert!(dropped.completed_jobs().is_empty());
        assert_eq!(retained.completed_jobs().len(), 50);
        // Aggregates — including the latency sum and sample cadence — are
        // bitwise unaffected by retention.
        assert_eq!(out_retained.totals, out_dropped.totals);
        assert_eq!(out_retained.samples, out_dropped.samples);
    }

    #[test]
    fn max_completed_limit_works_without_retention() {
        let jobs: Vec<Job> = (0..10).map(|i| job(i, i as f64, 5.0, 0.3)).collect();
        let mut config = ClusterConfig::paper(2);
        config.retain_completed_jobs = false;
        let mut c = Cluster::new(config, jobs).unwrap();
        let out = c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::jobs(3),
        );
        assert_eq!(out.totals.jobs_completed, 3);
        assert!(c.completed_jobs().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn non_monotone_stream_panics() {
        let jobs = vec![job(0, 10.0, 5.0, 0.3), job(1, 5.0, 5.0, 0.3)];
        let source = ArrivalSource::from_stream(jobs.into_iter());
        let mut c = Cluster::from_source(ClusterConfig::paper(1), source).unwrap();
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
    }

    #[test]
    fn samples_record_monotone_curves() {
        let mut config = ClusterConfig::paper(2);
        config.sample_every = 2;
        let jobs: Vec<Job> = (0..10).map(|i| job(i, i as f64, 5.0, 0.3)).collect();
        let mut c = Cluster::new(config, jobs).unwrap();
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        let samples = c.samples();
        assert!(!samples.is_empty());
        for w in samples.windows(2) {
            assert!(w[1].jobs_completed > w[0].jobs_completed);
            assert!(w[1].total_latency_s >= w[0].total_latency_s);
            assert!(w[1].energy_joules >= w[0].energy_joules);
        }
    }
}
