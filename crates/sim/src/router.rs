//! Front-end routing of one arrival stream across several independent
//! clusters.
//!
//! The paper's global tier assigns every arriving job to a server of *one*
//! cluster. Scaling that out means a fleet of independent clusters behind a
//! front-end [`Router`]: the router sees each job once, in arrival order,
//! and picks the cluster that will own it; the chosen cluster's own global
//! tier then dispatches the job to a server as before.
//!
//! Routing is deliberately *feed-forward*: decisions depend only on the
//! arrival stream and the router's own bookkeeping, never on live cluster
//! state. That keeps the per-cluster sub-streams a pure function of
//! (stream, policy, cluster capacities), so each cluster can be simulated
//! on its own worker thread and the merged result is deterministic
//! regardless of scheduling. Clusters are weighed by *aggregate capacity*
//! (unit-server equivalents), not server count, so a cluster of two 2x
//! servers outweighs one of three little servers.

use crate::job::Job;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the front-end router picks a cluster for each arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cyclic dispatch, ignoring cluster capacity and load.
    RoundRobin,
    /// Estimated-backlog routing: each job goes to the cluster with the
    /// least outstanding routed work per unit of capacity. The router
    /// tracks the service time it has sent to each cluster and drains it
    /// at the cluster's aggregate capacity, so bursts spill to the
    /// emptier clusters.
    LeastLoaded,
    /// Largest-remainder dispatch proportional to cluster capacity: after
    /// `n` jobs, every cluster has received
    /// `n * capacity_k / capacity_total` jobs, within one.
    WeightedByCapacity,
}

impl RouterPolicy {
    /// Every routing policy, in canonical order (grid axes iterate this).
    pub const ALL: [RouterPolicy; 3] = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastLoaded,
        RouterPolicy::WeightedByCapacity,
    ];

    /// Short display name (used in topology names and reports).
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "rr",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::WeightedByCapacity => "weighted",
        }
    }
}

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic front-end router over `N` clusters.
///
/// Feed each job exactly once, in arrival order, through
/// [`Router::route`]; or split a whole stream at once with
/// [`Router::split`].
///
/// # Examples
///
/// ```
/// use hierdrl_sim::prelude::*;
///
/// let jobs: Vec<Job> = (0..6)
///     .map(|i| Job::new(
///         JobId(i),
///         SimTime::from_secs(i as f64),
///         120.0,
///         ResourceVec::cpu_mem_disk(0.25, 0.1, 0.02),
///     ))
///     .collect();
/// // Two clusters with aggregate capacities 4.0 and 2.0 (e.g. four unit
/// // servers vs. one 2x server): capacity-weighted routing sends two of
/// // every three jobs to the bigger cluster. For unit-capacity fleets the
/// // weights are simply the server counts
/// // ([`ClusterConfig::routing_weight`](crate::config::ClusterConfig::routing_weight)).
/// let shards = Router::split(RouterPolicy::WeightedByCapacity, &[4.0, 2.0], &jobs);
/// assert_eq!(shards[0].len(), 4);
/// assert_eq!(shards[1].len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    policy: RouterPolicy,
    /// Per-cluster aggregate capacity in unit-server equivalents.
    weights: Vec<f64>,
    /// Round-robin cursor.
    next: usize,
    /// Jobs routed per cluster (weighted-by-capacity bookkeeping).
    assigned: Vec<u64>,
    /// Total jobs routed.
    total_assigned: u64,
    /// Outstanding routed service time per cluster, seconds (least-loaded
    /// bookkeeping).
    backlog_s: Vec<f64>,
    /// Arrival time of the previously routed job, seconds.
    last_arrival_s: f64,
}

impl Router {
    /// A router over clusters of the given aggregate capacities (in
    /// unit-server equivalents — for a unit-capacity fleet the weight of a
    /// cluster is simply its server count; a cluster of four little
    /// servers and a cluster of two 2x servers both weigh `4.0`). Derive
    /// the weights from
    /// [`ClusterConfig::routing_weight`](crate::config::ClusterConfig::routing_weight).
    ///
    /// A cluster may have weight `0.0` — its healthy capacity vanished
    /// after crashes — and then receives no jobs under any policy until
    /// re-weighted; at least one cluster must stay positive.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty, contains a negative or non-finite
    /// weight, or sums to zero — all bugs in the caller.
    pub fn new(policy: RouterPolicy, capacities: &[f64]) -> Self {
        assert!(!capacities.is_empty(), "router needs >= 1 cluster");
        assert!(
            capacities.iter().all(|&w| w.is_finite() && w >= 0.0),
            "every cluster needs non-negative finite capacity, got {capacities:?}"
        );
        assert!(
            capacities.iter().any(|&w| w > 0.0),
            "at least one cluster needs positive capacity, got {capacities:?}"
        );
        Self {
            policy,
            weights: capacities.to_vec(),
            next: 0,
            assigned: vec![0; capacities.len()],
            total_assigned: 0,
            backlog_s: vec![0.0; capacities.len()],
            last_arrival_s: 0.0,
        }
    }

    /// A router over homogeneous clusters of the given server counts (the
    /// unit-capacity fallback: each cluster's weight is its server count).
    ///
    /// # Panics
    ///
    /// Panics if `cluster_sizes` is empty or contains a zero-server
    /// cluster.
    pub fn from_server_counts(policy: RouterPolicy, cluster_sizes: &[usize]) -> Self {
        let weights: Vec<f64> = cluster_sizes.iter().map(|&m| m as f64).collect();
        Self::new(policy, &weights)
    }

    /// The routing policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Number of clusters behind the router.
    pub fn num_clusters(&self) -> usize {
        self.weights.len()
    }

    /// Per-cluster capacity weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Jobs routed to each cluster so far.
    pub fn assigned(&self) -> &[u64] {
        &self.assigned
    }

    /// Picks the cluster that owns `job`. Jobs must be fed in arrival
    /// order (the least-loaded backlog estimate drains with arrival time).
    pub fn route(&mut self, job: &Job) -> usize {
        let k = match self.policy {
            RouterPolicy::RoundRobin => {
                // Cycle over the positive-weight clusters only: a cluster
                // whose healthy capacity collapsed to zero takes no turns.
                let mut k = self.next;
                while self.weights[k] == 0.0 {
                    k = (k + 1) % self.weights.len();
                }
                self.next = (k + 1) % self.weights.len();
                k
            }
            RouterPolicy::LeastLoaded => {
                let now = job.arrival.as_secs();
                let dt = (now - self.last_arrival_s).max(0.0);
                self.last_arrival_s = now;
                let mut best = usize::MAX;
                let mut best_load = f64::INFINITY;
                for (i, b) in self.backlog_s.iter_mut().enumerate() {
                    // A zero-capacity cluster drains nothing and must never
                    // win (its per-capacity load would divide by zero).
                    if self.weights[i] == 0.0 {
                        continue;
                    }
                    // Each cluster drains its routed work at its aggregate
                    // capacity.
                    *b = (*b - dt * self.weights[i]).max(0.0);
                    let load = *b / self.weights[i];
                    if load < best_load {
                        best_load = load;
                        best = i;
                    }
                }
                self.backlog_s[best] += job.duration;
                best
            }
            RouterPolicy::WeightedByCapacity => {
                let total: f64 = self.weights.iter().sum();
                let n = (self.total_assigned + 1) as f64;
                let mut best = usize::MAX;
                let mut best_deficit = f64::NEG_INFINITY;
                for (i, &w) in self.weights.iter().enumerate() {
                    // A zero-weight cluster's deficit is exactly 0, which
                    // would beat every over-quota (negative-deficit)
                    // cluster; it owns no quota, so skip it outright.
                    if w == 0.0 {
                        continue;
                    }
                    // Largest remainder: quota owed minus jobs received.
                    let deficit = n * w / total - self.assigned[i] as f64;
                    if deficit > best_deficit {
                        best_deficit = deficit;
                        best = i;
                    }
                }
                best
            }
        };
        self.assigned[k] += 1;
        self.total_assigned += 1;
        k
    }

    /// Re-derives the per-cluster capacity weights at a deterministic
    /// epoch boundary (the elastic axis: scheduled membership changes the
    /// aggregate capacity behind each shard). Routing bookkeeping — the
    /// round-robin cursor, assigned counts, and backlog estimates — is
    /// carried across the boundary, so the split stays a pure feed-forward
    /// function of (stream, policy, weight timeline) and sharded execution
    /// remains byte-identical to serial.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` fails the [`Router::new`] validation or its
    /// length differs from the current cluster count.
    pub fn set_weights(&mut self, capacities: &[f64]) {
        assert_eq!(
            capacities.len(),
            self.weights.len(),
            "re-weighting cannot change the cluster count ({} -> {})",
            self.weights.len(),
            capacities.len()
        );
        assert!(
            capacities.iter().all(|&w| w.is_finite() && w >= 0.0),
            "every cluster needs non-negative finite capacity, got {capacities:?}"
        );
        assert!(
            capacities.iter().any(|&w| w > 0.0),
            "at least one cluster needs positive capacity, got {capacities:?}"
        );
        self.weights = capacities.to_vec();
    }

    /// Splits a whole arrival stream into per-cluster sub-streams, in
    /// arrival order. Every input job lands in exactly one sub-stream.
    /// `capacities` are per-cluster aggregate capacities, as for
    /// [`Router::new`].
    pub fn split(policy: RouterPolicy, capacities: &[f64], jobs: &[Job]) -> Vec<Vec<Job>> {
        let mut router = Router::new(policy, capacities);
        let mut shards: Vec<Vec<Job>> = vec![Vec::new(); capacities.len()];
        for job in jobs {
            shards[router.route(job)].push(job.clone());
        }
        shards
    }

    /// Like [`Router::split`], but with a piecewise-constant capacity
    /// timeline: `epochs` is a non-empty list of `(start_s, weights)`
    /// entries in non-decreasing start order, and each job is routed under
    /// the weights of the last epoch whose start is `<= arrival`
    /// (arrivals before the first epoch use the first entry). Derive the
    /// timeline from *scheduled* membership (never live cluster state) so
    /// the split stays feed-forward.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is empty, unsorted, of inconsistent width, or
    /// any weight vector fails the [`Router::new`] validation.
    pub fn split_epochs(
        policy: RouterPolicy,
        epochs: &[(f64, Vec<f64>)],
        jobs: &[Job],
    ) -> Vec<Vec<Job>> {
        assert!(!epochs.is_empty(), "split_epochs needs >= 1 epoch");
        assert!(
            epochs.windows(2).all(|w| w[0].0 <= w[1].0),
            "epoch starts must be non-decreasing"
        );
        let mut router = Router::new(policy, &epochs[0].1);
        let mut shards: Vec<Vec<Job>> = vec![Vec::new(); epochs[0].1.len()];
        let mut next_epoch = 1;
        for job in jobs {
            while next_epoch < epochs.len() && epochs[next_epoch].0 <= job.arrival.as_secs() {
                router.set_weights(&epochs[next_epoch].1);
                next_epoch += 1;
            }
            shards[router.route(job)].push(job.clone());
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::resources::ResourceVec;
    use crate::time::SimTime;

    fn job(id: u64, t: f64, dur: f64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(t),
            dur,
            ResourceVec::cpu_mem_disk(0.3, 0.1, 0.05),
        )
    }

    fn stream(n: u64) -> Vec<Job> {
        (0..n).map(|i| job(i, i as f64 * 10.0, 300.0)).collect()
    }

    #[test]
    fn round_robin_cycles_regardless_of_size() {
        let shards = Router::split(RouterPolicy::RoundRobin, &[8.0, 1.0, 1.0], &stream(9));
        assert_eq!(
            shards.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 3, 3]
        );
        assert_eq!(shards[0][0].id, JobId(0));
        assert_eq!(shards[1][0].id, JobId(1));
        assert_eq!(shards[2][0].id, JobId(2));
    }

    #[test]
    fn weighted_tracks_capacity_within_one_job() {
        let weights = [4.0f64, 2.0, 2.0];
        let jobs = stream(80);
        let shards = Router::split(RouterPolicy::WeightedByCapacity, &weights, &jobs);
        let total: f64 = weights.iter().sum();
        for (k, shard) in shards.iter().enumerate() {
            for n in 1..=jobs.len() {
                let routed = shard.iter().filter(|j| j.id.0 < n as u64).count() as f64;
                let quota = n as f64 * weights[k] / total;
                assert!(
                    (routed - quota).abs() <= 1.0,
                    "cluster {k} has {routed} of quota {quota} after {n} jobs"
                );
            }
        }
    }

    #[test]
    fn weighted_weighs_big_servers_not_server_counts() {
        // A cluster of two 2x servers (weight 4.0) must receive twice the
        // jobs of a two-unit-server cluster (weight 2.0), even though the
        // big cluster has the same server count: the weight is capacity.
        let shards = Router::split(RouterPolicy::WeightedByCapacity, &[4.0, 2.0], &stream(60));
        assert_eq!(shards[0].len(), 40);
        assert_eq!(shards[1].len(), 20);
    }

    #[test]
    fn least_loaded_drains_big_clusters_faster() {
        // Same server count, different capacity: both clusters get one
        // long job; the 3x cluster drains its backlog three times as fast,
        // so the next job (after a gap) goes back to it.
        let jobs = vec![
            job(0, 0.0, 300.0), // -> cluster 0 (tie, lowest index)
            job(1, 0.0, 300.0), // -> cluster 1 (cluster 0 now loaded)
            job(2, 50.0, 10.0), // 0 drained 150s of 300, load 50; 1 drained 50, load 250
        ];
        let shards = Router::split(RouterPolicy::LeastLoaded, &[3.0, 1.0], &jobs);
        assert_eq!(shards[0].len(), 2, "big cluster absorbs the follow-up");
        assert_eq!(shards[1].len(), 1);
    }

    #[test]
    fn least_loaded_spills_long_jobs_to_empty_cluster() {
        // One huge job saturates cluster 0's estimate; the next jobs avoid it.
        let jobs = vec![
            job(0, 0.0, 100_000.0),
            job(1, 1.0, 100.0),
            job(2, 2.0, 100.0),
        ];
        let shards = Router::split(RouterPolicy::LeastLoaded, &[1.0, 1.0], &jobs);
        assert_eq!(shards[0].len(), 1);
        assert_eq!(shards[1].len(), 2);
    }

    #[test]
    fn least_loaded_backlog_drains_with_time() {
        // After a long quiet period the first cluster's backlog has drained,
        // so ties break back to it.
        let jobs = vec![job(0, 0.0, 50.0), job(1, 1_000.0, 50.0)];
        let shards = Router::split(RouterPolicy::LeastLoaded, &[1.0, 1.0], &jobs);
        assert_eq!(shards[0].len(), 2);
        assert!(shards[1].is_empty());
    }

    #[test]
    fn sub_streams_stay_sorted_by_arrival() {
        for policy in RouterPolicy::ALL {
            let shards = Router::split(policy, &[3.0, 2.0, 1.0], &stream(50));
            for shard in shards {
                for w in shard.windows(2) {
                    assert!(w[0].arrival <= w[1].arrival);
                }
            }
        }
    }

    #[test]
    fn server_counts_are_the_unit_capacity_fallback() {
        let from_counts = Router::from_server_counts(RouterPolicy::WeightedByCapacity, &[3, 2]);
        assert_eq!(from_counts.weights(), &[3.0, 2.0]);
        let mut a = from_counts;
        let mut b = Router::new(RouterPolicy::WeightedByCapacity, &[3.0, 2.0]);
        for j in stream(20) {
            assert_eq!(a.route(&j), b.route(&j));
        }
    }

    #[test]
    fn zero_capacity_cluster_gets_no_jobs_under_any_policy() {
        // A cluster whose healthy capacity collapsed to zero (all servers
        // crashed) stays addressable but receives nothing.
        for policy in RouterPolicy::ALL {
            let shards = Router::split(policy, &[2.0, 0.0, 1.0], &stream(30));
            assert_eq!(shards[1].len(), 0, "{policy} routed to a dead cluster");
            assert_eq!(shards[0].len() + shards[2].len(), 30, "{policy} lost jobs");
        }
    }

    #[test]
    fn weighted_skips_zero_weight_even_when_others_are_over_quota() {
        // Regression: a zero-weight cluster's deficit (exactly 0) used to
        // beat over-quota clusters' negative deficits.
        let mut r = Router::new(RouterPolicy::WeightedByCapacity, &[1.0, 0.0]);
        for j in stream(10) {
            assert_eq!(r.route(&j), 0);
        }
    }

    #[test]
    fn split_epochs_with_one_epoch_matches_split() {
        let jobs = stream(40);
        for policy in RouterPolicy::ALL {
            let plain = Router::split(policy, &[3.0, 2.0], &jobs);
            let epoch = Router::split_epochs(policy, &[(0.0, vec![3.0, 2.0])], &jobs);
            assert_eq!(plain, epoch, "{policy}");
        }
    }

    #[test]
    fn split_epochs_reweights_at_boundaries() {
        // Cluster 1's capacity collapses at t = 100: every later arrival
        // must land on cluster 0, while bookkeeping carries across.
        let jobs = stream(30); // arrivals at 0, 10, ..., 290
        let epochs = vec![(0.0, vec![1.0, 1.0]), (100.0, vec![1.0, 0.0])];
        let shards = Router::split_epochs(RouterPolicy::WeightedByCapacity, &epochs, &jobs);
        assert_eq!(shards[0].len() + shards[1].len(), 30);
        assert!(shards[1].iter().all(|j| j.arrival.as_secs() < 100.0));
        assert!(shards[1].len() >= 4, "early arrivals split both ways");
    }

    #[test]
    fn set_weights_carries_round_robin_cursor() {
        let mut r = Router::new(RouterPolicy::RoundRobin, &[1.0, 1.0, 1.0]);
        assert_eq!(r.route(&job(0, 0.0, 10.0)), 0);
        r.set_weights(&[1.0, 0.0, 1.0]);
        // Cursor was at 1; zero-weight cluster 1 takes no turn.
        assert_eq!(r.route(&job(1, 1.0, 10.0)), 2);
        assert_eq!(r.route(&job(2, 2.0, 10.0)), 0);
    }

    #[test]
    #[should_panic(expected = "cannot change the cluster count")]
    fn set_weights_rejects_width_change() {
        let mut r = Router::new(RouterPolicy::RoundRobin, &[1.0, 1.0]);
        r.set_weights(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "negative finite capacity")]
    fn negative_capacity_cluster_rejected() {
        let _ = Router::new(RouterPolicy::RoundRobin, &[2.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one cluster needs positive capacity")]
    fn all_zero_capacity_rejected() {
        let _ = Router::new(RouterPolicy::RoundRobin, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "router needs >= 1 cluster")]
    fn empty_cluster_list_rejected() {
        let _ = Router::new(RouterPolicy::RoundRobin, &[]);
    }
}
