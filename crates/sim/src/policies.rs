//! Reference allocation and power-management policies.
//!
//! These are the non-learning building blocks the paper compares against:
//! round-robin dispatch (the baseline of Figs. 8 and 9), ad-hoc immediate
//! sleep (Fig. 4(a)), fixed timeouts (the Fig. 10 baselines), and always-on
//! operation. A couple of common greedy heuristics are included for
//! completeness.

use crate::cluster::{Allocator, ClusterView, PowerManager, TimeoutDecision};
use crate::job::{Job, ServerId};
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dispatches jobs to servers in cyclic order, ignoring state.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinAllocator {
    next: usize,
}

impl RoundRobinAllocator {
    /// Creates an allocator starting at server 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Allocator for RoundRobinAllocator {
    fn select(&mut self, _job: &Job, view: &ClusterView<'_>) -> ServerId {
        let id = ServerId(self.next % view.num_servers());
        self.next = (self.next + 1) % view.num_servers();
        id
    }
}

/// Dispatches jobs to uniformly random servers.
#[derive(Debug)]
pub struct RandomAllocator {
    rng: StdRng,
}

impl RandomAllocator {
    /// Creates an allocator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Allocator for RandomAllocator {
    fn select(&mut self, _job: &Job, view: &ClusterView<'_>) -> ServerId {
        ServerId(self.rng.gen_range(0..view.num_servers()))
    }
}

/// Dispatches each job to the server with the fewest jobs in its system
/// (queued + running); ties break toward lower CPU utilization, then lower
/// id. A simple join-the-shortest-queue heuristic.
#[derive(Debug, Clone, Default)]
pub struct LeastLoadedAllocator;

impl Allocator for LeastLoadedAllocator {
    fn select(&mut self, _job: &Job, view: &ClusterView<'_>) -> ServerId {
        let mut best = 0usize;
        let mut best_key = (usize::MAX, f64::MAX);
        for (i, s) in view.servers().iter().enumerate() {
            let key = (s.jobs_in_system(), s.cpu_utilization());
            if key.0 < best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
                best_key = key;
                best = i;
            }
        }
        ServerId(best)
    }
}

/// First-fit consolidation: dispatches to the lowest-numbered *awake*
/// server where the job fits immediately (no queueing) without exceeding
/// the cluster's anti-colocation cap; otherwise wakes the lowest-numbered
/// sleeping server; only when every server is awake and saturated does it
/// queue on the least-loaded one. Greedy packing concentrates load so idle
/// servers can sleep, while waking capacity rather than building queues.
#[derive(Debug, Clone, Default)]
pub struct FirstFitAllocator;

impl Allocator for FirstFitAllocator {
    fn select(&mut self, job: &Job, view: &ClusterView<'_>) -> ServerId {
        let colo_cap = view.config().reliability.hot_queue_len;
        let mut sleeper: Option<usize> = None;
        let mut fallback: Option<(usize, usize)> = None; // (jobs_in_system, id)
        for (i, s) in view.servers().iter().enumerate() {
            if s.state().is_on() {
                if s.queue_len() == 0
                    && s.jobs_in_system() < colo_cap
                    && s.used().fits_with(&job.demand, s.capacity())
                {
                    return ServerId(i);
                }
                let key = (s.jobs_in_system(), i);
                if fallback.is_none_or(|f| key < f) {
                    fallback = Some(key);
                }
            } else if sleeper.is_none() {
                sleeper = Some(i);
            }
        }
        if let Some(i) = sleeper {
            return ServerId(i);
        }
        ServerId(fallback.map_or(0, |(_, i)| i))
    }
}

/// Servers never sleep (infinite timeout).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysOnPower;

impl PowerManager for AlwaysOnPower {
    fn on_idle(
        &mut self,
        _server: ServerId,
        _view: &ClusterView<'_>,
        _now: SimTime,
    ) -> TimeoutDecision {
        TimeoutDecision::StayAwake
    }
}

/// The ad-hoc policy of Fig. 4(a): sleep the instant the server goes idle.
#[derive(Debug, Clone, Copy, Default)]
pub struct SleepImmediatelyPower;

impl PowerManager for SleepImmediatelyPower {
    fn on_idle(
        &mut self,
        _server: ServerId,
        _view: &ClusterView<'_>,
        _now: SimTime,
    ) -> TimeoutDecision {
        TimeoutDecision::SleepNow
    }
}

/// The fixed-timeout DPM baseline used in Fig. 10 (timeouts of 30/60/90 s):
/// sleep after the server has been idle for `timeout` seconds.
#[derive(Debug, Clone, Copy)]
pub struct FixedTimeoutPower {
    timeout: f64,
}

impl FixedTimeoutPower {
    /// Creates the policy with the given timeout in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is negative or non-finite.
    pub fn new(timeout: f64) -> Self {
        assert!(
            timeout.is_finite() && timeout >= 0.0,
            "timeout must be finite and non-negative, got {timeout}"
        );
        Self { timeout }
    }

    /// The configured timeout, seconds.
    pub fn timeout(&self) -> f64 {
        self.timeout
    }
}

impl PowerManager for FixedTimeoutPower {
    fn on_idle(
        &mut self,
        _server: ServerId,
        _view: &ClusterView<'_>,
        _now: SimTime,
    ) -> TimeoutDecision {
        if self.timeout == 0.0 {
            TimeoutDecision::SleepNow
        } else {
            TimeoutDecision::After(self.timeout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, RunLimit};
    use crate::config::ClusterConfig;
    use crate::job::JobId;
    use crate::resources::ResourceVec;

    fn job(id: u64, t: f64, dur: f64, cpu: f64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(t),
            dur,
            ResourceVec::cpu_mem_disk(cpu, 0.1, 0.05),
        )
    }

    #[test]
    fn round_robin_cycles() {
        let jobs: Vec<Job> = (0..6).map(|i| job(i, i as f64 * 0.1, 100.0, 0.1)).collect();
        let mut c = Cluster::new(ClusterConfig::paper(3), jobs).unwrap();
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        for s in c.servers() {
            assert_eq!(s.stats().jobs_completed, 2);
        }
    }

    #[test]
    fn random_allocator_is_deterministic_per_seed() {
        let mk = || {
            let jobs: Vec<Job> = (0..20).map(|i| job(i, i as f64, 10.0, 0.1)).collect();
            let mut c = Cluster::new(ClusterConfig::paper(5), jobs).unwrap();
            c.run(
                &mut RandomAllocator::new(99),
                &mut AlwaysOnPower,
                RunLimit::unbounded(),
            );
            c.servers()
                .iter()
                .map(|s| s.stats().jobs_completed)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn least_loaded_balances_queue_depth() {
        // 3 long jobs then 1 more: the 4th should land on the empty server.
        let jobs = vec![
            job(0, 0.0, 1000.0, 0.9),
            job(1, 1.0, 1000.0, 0.9),
            job(2, 2.0, 1000.0, 0.9),
            job(3, 3.0, 10.0, 0.1),
        ];
        let mut c = Cluster::new(ClusterConfig::paper(4), jobs).unwrap();
        c.run(
            &mut LeastLoadedAllocator,
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        let loaded: Vec<u64> = c
            .servers()
            .iter()
            .map(|s| s.stats().jobs_completed)
            .collect();
        assert_eq!(loaded, vec![1, 1, 1, 1]);
    }

    #[test]
    fn first_fit_consolidates_small_jobs() {
        let jobs: Vec<Job> = (0..4).map(|i| job(i, i as f64 * 0.5, 500.0, 0.2)).collect();
        let mut c = Cluster::new(ClusterConfig::paper(4), jobs).unwrap();
        c.run(
            &mut FirstFitAllocator,
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        );
        assert_eq!(c.servers()[0].stats().jobs_completed, 4);
        assert_eq!(c.servers()[1].stats().jobs_completed, 0);
    }

    #[test]
    fn fixed_timeout_zero_equals_sleep_now() {
        let mut p = FixedTimeoutPower::new(0.0);
        let mut config = ClusterConfig::paper(1);
        config.servers_initially_on = false;
        let jobs = vec![job(0, 0.0, 10.0, 0.5)];
        let mut c = Cluster::new(config, jobs).unwrap();
        c.run(
            &mut RoundRobinAllocator::new(),
            &mut p,
            RunLimit::unbounded(),
        );
        assert_eq!(c.servers()[0].stats().sleep_transitions, 1);
        assert_eq!(c.servers()[0].stats().wake_transitions, 1);
    }

    #[test]
    #[should_panic(expected = "timeout must be finite")]
    fn negative_timeout_rejected() {
        let _ = FixedTimeoutPower::new(-1.0);
    }
}
