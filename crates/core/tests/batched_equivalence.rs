//! Bitwise equivalence of the batched DQN hot path against the retained
//! unbatched reference implementations.
//!
//! The batched `q_values`/`train_batch` rewrite claims *exact* numerical
//! equivalence, not approximate: every kernel in `hierdrl-neural` is
//! row-independent with in-order accumulation, so stacking the Sub-Q rows
//! into one GEMM cannot change a single bit. This suite holds that claim
//! against random states across cluster sizes (including the padded
//! `M = 10, K = 3` and `M = 14, K = 4` layouts) and across repeated
//! optimizer steps.

use hierdrl_core::dqn::{GroupedQNetwork, QNetworkConfig, QSample};
use hierdrl_core::state::{GlobalState, StateEncoder, StateEncoderConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn layout(m: usize, k: usize) -> StateEncoder {
    StateEncoder::new(
        m,
        3,
        StateEncoderConfig {
            num_groups: k,
            ..Default::default()
        },
    )
}

fn random_state(layout: &StateEncoder, rng: &mut StdRng) -> GlobalState {
    GlobalState {
        groups: (0..layout.num_groups())
            .map(|_| {
                (0..layout.group_width())
                    .map(|_| rng.gen::<f32>())
                    .collect()
            })
            .collect(),
        job: (0..layout.job_width()).map(|_| rng.gen::<f32>()).collect(),
    }
}

/// The `(M, K)` grid under test: the qbench/CI smoke sizes (10, 14) plus a
/// larger cluster, with both even and padded group layouts.
const GRID: &[(usize, usize)] = &[(10, 2), (10, 3), (14, 2), (14, 4), (32, 2), (32, 3)];

#[test]
fn batched_q_values_are_bitwise_identical_to_reference() {
    for &(m, k) in GRID {
        let mut rng = StdRng::seed_from_u64(m as u64 * 100 + k as u64);
        let lay = layout(m, k);
        let net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        for trial in 0..16 {
            let s = random_state(&lay, &mut rng);
            assert_eq!(
                net.q_values(&s),
                net.q_values_reference(&s),
                "M={m} K={k} trial {trial}: batched q_values diverged"
            );
        }
    }
}

#[test]
fn q_values_batch_matches_per_state_calls() {
    for &(m, k) in GRID {
        let mut rng = StdRng::seed_from_u64(m as u64 * 101 + k as u64);
        let lay = layout(m, k);
        let net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        let states: Vec<GlobalState> = (0..7).map(|_| random_state(&lay, &mut rng)).collect();
        let refs: Vec<&GlobalState> = states.iter().collect();
        let batched = net.q_values_batch(&refs);
        assert_eq!(batched.len(), states.len());
        for (i, s) in states.iter().enumerate() {
            assert_eq!(
                batched[i],
                net.q_values_reference(s),
                "M={m} K={k} state {i}: multi-state batch diverged"
            );
        }
    }
}

#[test]
fn q_action_batch_matches_reference_q_values() {
    for &(m, k) in GRID {
        let mut rng = StdRng::seed_from_u64(m as u64 * 104 + k as u64);
        let lay = layout(m, k);
        let net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        let states: Vec<GlobalState> = (0..9).map(|_| random_state(&lay, &mut rng)).collect();
        let items: Vec<(&GlobalState, usize)> = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s, (i * 3) % m))
            .collect();
        let got = net.q_action_batch(&items);
        for (i, (s, a)) in items.iter().enumerate() {
            assert_eq!(
                got[i].to_bits(),
                net.q_values_reference(s)[*a].to_bits(),
                "M={m} K={k} item {i}: q_action_batch diverged"
            );
        }
    }
}

#[test]
fn max_q_agrees_with_reference_q_values() {
    for &(m, k) in GRID {
        let mut rng = StdRng::seed_from_u64(m as u64 * 102 + k as u64);
        let lay = layout(m, k);
        let net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        for _ in 0..8 {
            let s = random_state(&lay, &mut rng);
            let q = net.q_values_reference(&s);
            // Mask the padding actions exactly as the allocator does.
            let expected = q[..m].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(net.max_q(&s, m), expected, "M={m} K={k}: max_q diverged");
            assert_eq!(GroupedQNetwork::max_q_of(&q, m), expected);
        }
    }
}

/// Serializes everything that training mutates (weights, gradients are
/// zeroed anyway, Adam moments and step counter) into a comparable string.
fn full_state(net: &GroupedQNetwork) -> String {
    serde_json::to_string(net).expect("network serializes")
}

#[test]
fn batched_training_is_bitwise_identical_to_reference() {
    for &(m, k) in GRID {
        let mut rng = StdRng::seed_from_u64(m as u64 * 103 + k as u64);
        let lay = layout(m, k);
        let batched = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        let mut reference = batched.clone();
        let mut batched = batched;
        for step in 0..12 {
            let samples: Vec<QSample> = (0..9)
                .map(|_| QSample {
                    state: random_state(&lay, &mut rng),
                    action: rng.gen_range(0..m),
                    target: rng.gen_range(-5.0..0.0),
                })
                .collect();
            let loss_b = batched.train_batch(&samples);
            let loss_r = reference.train_batch_reference(&samples);
            assert_eq!(
                loss_b.to_bits(),
                loss_r.to_bits(),
                "M={m} K={k} step {step}: losses diverged ({loss_b} vs {loss_r})"
            );
            assert_eq!(
                full_state(&batched),
                full_state(&reference),
                "M={m} K={k} step {step}: weights/optimizer state diverged"
            );
        }
        // And the trained networks still agree at inference time.
        let s = random_state(&lay, &mut rng);
        assert_eq!(batched.q_values(&s), reference.q_values_reference(&s));
    }
}

/// The training workspace recycles cache entries and gradient buffers
/// across steps; varying the minibatch size between steps forces every one
/// of those buffers through resize paths on dirty contents. Results must
/// still be bitwise identical to the per-sample reference, and interleaved
/// inference (which shares the workspace) must not perturb training.
#[test]
fn workspace_training_is_identical_across_varying_batch_sizes() {
    for &(m, k) in &[(10, 3), (14, 4), (32, 2)] {
        let mut rng = StdRng::seed_from_u64(m as u64 * 105 + k as u64);
        let lay = layout(m, k);
        let mut batched = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        let mut reference = batched.clone();
        for (step, &batch) in [1usize, 9, 4, 16, 2, 16, 1].iter().enumerate() {
            let samples: Vec<QSample> = (0..batch)
                .map(|_| QSample {
                    state: random_state(&lay, &mut rng),
                    action: rng.gen_range(0..m),
                    target: rng.gen_range(-5.0..0.0),
                })
                .collect();
            let loss_b = batched.train_batch(&samples);
            let loss_r = reference.train_batch_reference(&samples);
            assert_eq!(
                loss_b.to_bits(),
                loss_r.to_bits(),
                "M={m} K={k} step {step} (batch {batch}): losses diverged"
            );
            // Interleave inference through the shared workspace.
            let probe = random_state(&lay, &mut rng);
            assert_eq!(
                batched.q_values(&probe),
                reference.q_values_reference(&probe),
                "M={m} K={k} step {step}: post-step inference diverged"
            );
            assert_eq!(
                full_state(&batched),
                full_state(&reference),
                "M={m} K={k} step {step} (batch {batch}): state diverged"
            );
        }
    }
}
