//! The local tier: distributed RL-based dynamic power management
//! (Section VI-B, Algorithm 2).
//!
//! Each server independently runs a model-free continuous-time Q-learning
//! agent over *timeout* actions (including immediate shutdown). Decision
//! epochs follow the paper's three cases; the RL state is the predicted
//! next inter-arrival time (from the per-server LSTM predictor) discretized
//! into `n` categories. The reward rate is
//! `r(t) = -w * P(t) - (1 - w) * JQ(t)` (Eqn. 5) with power normalized by
//! peak watts; sweeping `w` traces the power/latency trade-off of Fig. 10.
//!
//! Because the paper's cases (2) and (3) admit exactly one action, this
//! implementation performs the SMDP value update from one case-(1) epoch to
//! the next, integrating the reward over the whole (possibly busy) sojourn
//! — equivalent to the per-case update under forced transitions, with fewer
//! bookkeeping states.

use crate::predictor::{IatPredictor, LstmIatPredictor, PredictorConfig};
use hierdrl_rl::discretize::Discretizer;
use hierdrl_rl::policy::{EpsilonGreedy, EpsilonSchedule};
use hierdrl_rl::qtable::QTable;
use hierdrl_rl::smdp::SmdpParams;
use hierdrl_sim::cluster::{ClusterView, PowerManager, TimeoutDecision};
use hierdrl_sim::job::ServerId;
use hierdrl_sim::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the RL power manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlPowerConfig {
    /// Timeout action set in seconds; must include at least one value.
    /// `0` means immediate shutdown.
    pub timeouts: Vec<f64>,
    /// Power-vs-latency weight `w` in `[0, 1]` (Eqn. 5): 1 favors power
    /// saving, 0 favors latency.
    pub weight: f64,
    /// SMDP Q-learning parameters.
    pub smdp: SmdpParams,
    /// Exploration schedule (per server).
    pub epsilon: EpsilonSchedule,
    /// Number of predicted-inter-arrival categories `n`.
    pub iat_bins: usize,
    /// Log-spaced bin range for predicted inter-arrival times, seconds.
    pub iat_range: (f64, f64),
    /// Per-server LSTM predictor configuration.
    pub predictor: PredictorConfig,
    /// Share one Q-table across all servers *of the same capacity class*
    /// instead of learning per-server tables. Decisions remain local and
    /// distributed; only the learned values are pooled — the same
    /// weight-sharing rationale the paper applies to its Sub-Q networks,
    /// and it multiplies the effective data per state-action pair by the
    /// class size. Servers with unequal capacity vectors have different
    /// idle economics (a 2x machine pays 2x the idle power for the same
    /// wake-up latency saving), so pooling them would blend incompatible
    /// sleep policies; [`RlPowerManager::for_cluster`] therefore gives
    /// each capacity class its own table. On a homogeneous cluster this
    /// collapses to the paper's single shared table.
    pub shared_learning: bool,
    /// Base RNG seed (each server derives its own).
    pub seed: u64,
}

impl Default for RlPowerConfig {
    fn default() -> Self {
        Self {
            timeouts: vec![0.0, 60.0, 180.0, 600.0, 1800.0],
            weight: 0.5,
            // Sleep/stay-awake pay-offs materialize over the following idle
            // period (up to ~10 min), so the local discount horizon must
            // cover it: beta = 0.003/s gives a ~5-6 minute horizon. Alpha is
            // high because per-server decision epochs are scarce.
            smdp: SmdpParams::new(0.3, 0.003),
            epsilon: EpsilonSchedule::Exponential {
                start: 0.4,
                end: 0.02,
                tau: 100.0,
            },
            iat_bins: 5,
            iat_range: (10.0, 3600.0),
            predictor: PredictorConfig::default(),
            shared_learning: true,
            seed: 11,
        }
    }
}

impl RlPowerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.timeouts.is_empty() {
            return Err("need at least one timeout action".into());
        }
        if self.timeouts.iter().any(|t| !(t.is_finite() && *t >= 0.0)) {
            return Err("timeouts must be finite and non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.weight) {
            return Err(format!("weight must be in [0, 1], got {}", self.weight));
        }
        if self.iat_bins < 2 {
            return Err("need at least two inter-arrival bins".into());
        }
        if !(self.iat_range.0 > 0.0 && self.iat_range.0 < self.iat_range.1) {
            return Err(format!(
                "iat_range invalid: ({}, {})",
                self.iat_range.0, self.iat_range.1
            ));
        }
        self.epsilon.validate()?;
        Ok(())
    }
}

/// A serializable snapshot of the trained local-tier policy: the learned
/// Q-table(s) and configuration. Predictors restart cold (they need only a
/// look-back window of arrivals to warm up).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpmSnapshot {
    /// Full power-manager configuration.
    pub config: RlPowerConfig,
    /// Learned Q-tables (one per capacity class when `shared_learning` —
    /// a single table on homogeneous fleets — else one per server).
    pub tables: Vec<QTable<u16>>,
    /// Representative capacity vector of each class, in class
    /// (first-appearance) order — what each shared table was trained *on*.
    /// Empty for managers built with [`RlPowerManager::new`], whose
    /// capacity structure is unknown; cluster-aware restores validate
    /// against it so a class-permuted cluster cannot silently receive a
    /// big-server table on its little servers.
    pub class_capacities: Vec<Vec<f64>>,
    /// Statistics at snapshot time.
    pub stats: DpmStats,
}

/// Aggregate statistics across all per-server agents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DpmStats {
    /// Case-(1) decision epochs handled.
    pub decisions: u64,
    /// SMDP value updates applied.
    pub updates: u64,
    /// Total arrivals observed by the predictors.
    pub arrivals_observed: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingDpm {
    state: u16,
    action: usize,
    time_s: f64,
    energy_j: f64,
    queue_integral: f64,
}

/// One server's power-management agent.
#[derive(Debug)]
struct ServerAgent {
    predictor: LstmIatPredictor,
    /// Index into the manager's table pool (the server's capacity class
    /// when learning is shared; the server index otherwise).
    table: usize,
    policy: EpsilonGreedy,
    rng: StdRng,
    pending: Option<PendingDpm>,
    last_arrival: Option<SimTime>,
}

/// Bitwise equality of two capacity vectors — the class-identity relation
/// both the class grouping and the snapshot-restore safety check use.
fn capacity_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Groups servers into capacity classes: servers with bit-identical
/// capacity vectors share a class, in first-appearance order. Returns the
/// per-server class index and each class's representative capacity vector
/// (`(vec![0; M], [unit])` for a homogeneous cluster). Elastic fleets get
/// one agent per *slot* up to `effective_max()` — slots beyond the initial
/// fleet take the unit capacity joins default to — so every server that can
/// ever exist has a stable, `ServerId`-keyed agent from the start.
fn capacity_classes(cluster: &hierdrl_sim::config::ClusterConfig) -> (Vec<usize>, Vec<Vec<f64>>) {
    let mut reps: Vec<Vec<f64>> = Vec::new();
    let classes = (0..cluster.effective_max())
        .map(|i| {
            let key = cluster.slot_capacity(i).as_slice().to_vec();
            match reps.iter().position(|k| capacity_eq(k, &key)) {
                Some(c) => c,
                None => {
                    reps.push(key);
                    reps.len() - 1
                }
            }
        })
        .collect();
    (classes, reps)
}

/// The distributed RL power manager (implements [`PowerManager`]).
///
/// Holds one agent per server — the paper's "distributed manner": every
/// decision uses only that server's local state and predictor. With
/// [`RlPowerConfig::shared_learning`] (the default) servers of the same
/// capacity class pool their learned Q-values, exactly as the paper's
/// Sub-Q networks share weights; set it to `false` for fully isolated
/// tables. Build heterogeneous fleets with
/// [`RlPowerManager::for_cluster`] so big and little servers learn in
/// separate pools.
#[derive(Debug)]
pub struct RlPowerManager {
    config: RlPowerConfig,
    discretizer: Discretizer,
    agents: Vec<ServerAgent>,
    tables: Vec<QTable<u16>>,
    /// Representative capacity per class, in class order (empty when the
    /// capacity structure is unknown, i.e. built via [`RlPowerManager::new`]).
    class_capacities: Vec<Vec<f64>>,
    /// `false` freezes every learnable part (Q-tables, predictors,
    /// exploration) — the no-continued-training ablation of online
    /// concept-drift sweeps.
    learning: bool,
    stats: DpmStats,
}

impl RlPowerManager {
    /// Builds a manager for `num_servers` *unit-capacity* servers (one
    /// capacity class). Use [`RlPowerManager::for_cluster`] when the
    /// cluster may be heterogeneous.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `num_servers == 0`.
    pub fn new(num_servers: usize, config: RlPowerConfig) -> Self {
        assert!(num_servers > 0, "need at least one server");
        Self::with_classes(num_servers, vec![0; num_servers], Vec::new(), config)
    }

    /// Builds a manager for `cluster`, keying shared learning by capacity
    /// class: servers with equal capacity vectors pool one Q-table; unequal
    /// servers learn separately (their idle economics differ). Collapses to
    /// [`RlPowerManager::new`] on homogeneous clusters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the cluster has no
    /// servers.
    pub fn for_cluster(
        cluster: &hierdrl_sim::config::ClusterConfig,
        config: RlPowerConfig,
    ) -> Self {
        assert!(cluster.num_servers > 0, "need at least one server");
        let (classes, class_capacities) = capacity_classes(cluster);
        Self::with_classes(cluster.effective_max(), classes, class_capacities, config)
    }

    /// `class_capacities` is empty when the capacity structure is unknown
    /// ([`RlPowerManager::new`]); then there is exactly one class.
    fn with_classes(
        num_servers: usize,
        classes: Vec<usize>,
        class_capacities: Vec<Vec<f64>>,
        config: RlPowerConfig,
    ) -> Self {
        let num_classes = class_capacities.len().max(1);
        config.validate().expect("invalid RL power config");
        let discretizer =
            Discretizer::log_spaced(config.iat_range.0, config.iat_range.1, config.iat_bins);
        let agents: Vec<ServerAgent> = (0..num_servers)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64 * 7919));
                ServerAgent {
                    predictor: LstmIatPredictor::new(config.predictor, &mut rng),
                    table: if config.shared_learning {
                        classes[i]
                    } else {
                        i
                    },
                    policy: EpsilonGreedy::new(config.epsilon),
                    rng,
                    pending: None,
                    last_arrival: None,
                }
            })
            .collect();
        let table_count = if config.shared_learning {
            num_classes
        } else {
            num_servers
        };
        let tables = (0..table_count)
            .map(|_| QTable::new(config.timeouts.len(), 0.0))
            .collect();
        Self {
            config,
            discretizer,
            agents,
            tables,
            class_capacities,
            learning: true,
            stats: DpmStats::default(),
        }
    }

    /// Number of Q-tables in the pool (capacity classes under shared
    /// learning, servers otherwise).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The configuration.
    pub fn config(&self) -> &RlPowerConfig {
        &self.config
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DpmStats {
        &self.stats
    }

    /// Captures a serializable snapshot of the learned policy.
    pub fn snapshot(&self) -> DpmSnapshot {
        DpmSnapshot {
            config: self.config.clone(),
            tables: self.tables.clone(),
            class_capacities: self.class_capacities.clone(),
            stats: self.stats,
        }
    }

    /// Reconstructs a manager for `num_servers` *unit-capacity* servers
    /// from a snapshot. Use [`RlPowerManager::from_snapshot_for_cluster`]
    /// for heterogeneous clusters.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's table count is incompatible with
    /// `num_servers` under its own `shared_learning` setting.
    pub fn from_snapshot(num_servers: usize, snapshot: DpmSnapshot) -> Self {
        let expected = if snapshot.config.shared_learning {
            1
        } else {
            num_servers
        };
        assert_eq!(
            snapshot.tables.len(),
            expected,
            "snapshot has {} tables, expected {expected}",
            snapshot.tables.len()
        );
        let mut mgr = Self::new(num_servers, snapshot.config);
        mgr.tables = snapshot.tables;
        mgr.stats = snapshot.stats;
        mgr
    }

    /// Reconstructs a manager for `cluster` from a snapshot taken on a
    /// cluster with the same capacity-class structure.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's table count is incompatible with the
    /// cluster's capacity classes under its own `shared_learning` setting.
    /// Panics also if the snapshot records class capacities (taken via
    /// [`RlPowerManager::for_cluster`]) that differ from the cluster's —
    /// including the same classes in a different order, which would
    /// silently hand a big-server table to little servers.
    pub fn from_snapshot_for_cluster(
        cluster: &hierdrl_sim::config::ClusterConfig,
        snapshot: DpmSnapshot,
    ) -> Self {
        let (classes, class_capacities) = capacity_classes(cluster);
        let expected = if snapshot.config.shared_learning {
            class_capacities.len()
        } else {
            cluster.effective_max()
        };
        assert_eq!(
            snapshot.tables.len(),
            expected,
            "snapshot has {} tables, expected {expected} for this cluster's \
             capacity classes",
            snapshot.tables.len()
        );
        if !snapshot.class_capacities.is_empty() {
            assert!(
                snapshot.class_capacities.len() == class_capacities.len()
                    && snapshot
                        .class_capacities
                        .iter()
                        .zip(&class_capacities)
                        .all(|(a, b)| capacity_eq(a, b)),
                "snapshot capacity classes {:?} do not match this cluster's {:?} \
                 (same class in a different order still mismatches: tables are \
                 keyed by class index)",
                snapshot.class_capacities,
                class_capacities
            );
        }
        let mut mgr = Self::with_classes(
            cluster.effective_max(),
            classes,
            class_capacities,
            snapshot.config,
        );
        mgr.tables = snapshot.tables;
        mgr.stats = snapshot.stats;
        mgr
    }

    /// Enables or disables learning. While off, the Q-tables stop
    /// updating, action selection is pure greedy argmax (exploration
    /// would be pointless without updates to profit from it), and the
    /// per-server LSTM predictors freeze their weights — though their
    /// look-back windows keep tracking arrivals so the RL state stays
    /// current. This is the "no continued training" ablation that online
    /// concept-drift sweeps compare against.
    pub fn set_learning(&mut self, on: bool) {
        self.learning = on;
        let predictor_training = on && self.config.predictor.online_training;
        for agent in &mut self.agents {
            agent.predictor.set_online_training(predictor_training);
            if !on {
                agent.pending = None;
            }
        }
    }

    /// Total observations the per-server predictors rejected as carrying
    /// no inter-arrival information (NaN/non-positive). Non-zero means a
    /// driver fabricated an interval — e.g. a last-arrival mark surviving
    /// a segment boundary.
    pub fn rejected_observations(&self) -> u64 {
        self.agents
            .iter()
            .map(|a| a.predictor.rejected_observations())
            .sum()
    }

    /// Total (accepted) observations consumed by the per-server
    /// predictors.
    pub fn predictor_observations(&self) -> u64 {
        self.agents.iter().map(|a| a.predictor.observations()).sum()
    }

    /// Mean one-step prediction MSE (normalized space) across servers whose
    /// predictors have scored at least one prediction.
    pub fn mean_predictor_mse(&self) -> Option<f64> {
        let scores: Vec<f64> = self
            .agents
            .iter()
            .filter_map(|a| a.predictor.normalized_mse())
            .collect();
        (!scores.is_empty()).then(|| scores.iter().sum::<f64>() / scores.len() as f64)
    }

    fn state_for(&self, agent: &ServerAgent) -> u16 {
        let predicted = agent.predictor.predict().unwrap_or(self.config.iat_range.1);
        self.discretizer.bin(predicted) as u16
    }
}

/// Computes the reward rate (Eqn. 5) and sojourn over a closed interval
/// from per-server integral deltas. `None` for an empty interval.
fn reward_rate(
    weight: f64,
    pending: &PendingDpm,
    now_s: f64,
    energy_j: f64,
    queue_integral: f64,
    peak_watts: f64,
) -> Option<(f64, f64)> {
    let tau = now_s - pending.time_s;
    if tau <= 0.0 {
        return None;
    }
    let avg_power_norm = (energy_j - pending.energy_j) / tau / peak_watts;
    let avg_jq = (queue_integral - pending.queue_integral) / tau;
    Some((-(weight * avg_power_norm + (1.0 - weight) * avg_jq), tau))
}

impl PowerManager for RlPowerManager {
    fn on_idle(
        &mut self,
        server: ServerId,
        view: &ClusterView<'_>,
        now: SimTime,
    ) -> TimeoutDecision {
        self.stats.decisions += 1;
        let (energy_j, queue_integral) = {
            let st = view.server(server).stats();
            (st.energy_joules, st.jobs_in_system_integral)
        };
        // Normalize by *this server's* peak (capacity-scaled), so big and
        // little machines see rewards in the same relative units.
        let peak = view.config().power.peak_watts * view.server(server).peak_scale();
        let weight = self.config.weight;
        let smdp = self.config.smdp;

        let state = self.state_for(&self.agents[server.0]);
        let table = self.agents[server.0].table;
        if !self.learning {
            // Frozen (the no-continued-training ablation): pure greedy
            // exploitation of the learned values, no bookkeeping.
            let row = self.tables[table].q_row(&state);
            let action = row
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("Q values are finite"))
                .map_or(0, |(i, _)| i);
            let timeout = self.config.timeouts[action];
            return if timeout == 0.0 {
                TimeoutDecision::SleepNow
            } else {
                TimeoutDecision::After(timeout)
            };
        }
        // Close the previous case-(1) decision with the observed sojourn.
        let agent = &mut self.agents[server.0];
        if let Some(p) = agent.pending.take() {
            if let Some((r, tau)) =
                reward_rate(weight, &p, now.as_secs(), energy_j, queue_integral, peak)
            {
                self.tables[table].update_smdp(&smdp, &p.state, p.action, r, tau, &state);
                self.stats.updates += 1;
            }
        }

        let agent = &mut self.agents[server.0];
        let action = agent
            .policy
            .select(&self.tables[table].q_row(&state), &mut agent.rng);
        agent.pending = Some(PendingDpm {
            state,
            action,
            time_s: now.as_secs(),
            energy_j,
            queue_integral,
        });

        let timeout = self.config.timeouts[action];
        if timeout == 0.0 {
            TimeoutDecision::SleepNow
        } else {
            TimeoutDecision::After(timeout)
        }
    }

    fn on_job_arrival(&mut self, server: ServerId, _view: &ClusterView<'_>, now: SimTime) {
        self.stats.arrivals_observed += 1;
        let agent = &mut self.agents[server.0];
        if let Some(last) = agent.last_arrival {
            agent.predictor.observe(now.since(last));
        }
        agent.last_arrival = Some(now);
    }

    fn on_run_begin(&mut self) {
        // Every run — a pre-training rollout or one drift segment —
        // restarts the clock at zero, so timestamp-anchored state must not
        // survive into it: a stale `last_arrival` would fabricate an
        // inter-arrival gap into the LSTM predictor feed (negative, since
        // the new clock starts below the old one's end — exactly the class
        // of leak this codebase hit before at pre-training boundaries),
        // and a stale pending transition would integrate a reward over a
        // nonsensical sojourn. `on_run_end` clears the same state, but the
        // *start* hook is the guarantee: it holds even if the previous run
        // was driven by a harness that never finished it.
        for agent in &mut self.agents {
            agent.pending = None;
            agent.last_arrival = None;
        }
    }

    fn on_run_end(&mut self, _view: &ClusterView<'_>) {
        // A later run (e.g. the next pre-training segment) restarts the
        // clock at zero: the final pending transition has no successor
        // epoch, and an inter-arrival gap must never span two runs.
        for agent in &mut self.agents {
            agent.pending = None;
            agent.last_arrival = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdrl_sim::cluster::{Cluster, RunLimit};
    use hierdrl_sim::config::ClusterConfig;
    use hierdrl_sim::job::{Job, JobId};
    use hierdrl_sim::policies::RoundRobinAllocator;
    use hierdrl_sim::resources::ResourceVec;

    fn fast_config() -> RlPowerConfig {
        RlPowerConfig {
            predictor: PredictorConfig {
                lookback: 5,
                hidden: 6,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn bursty_jobs(n: u64) -> Vec<Job> {
        // Bursts of 3 jobs, long quiet gaps.
        let mut out = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            if i % 3 == 0 {
                t += 900.0;
            } else {
                t += 20.0;
            }
            out.push(Job::new(
                JobId(i),
                SimTime::from_secs(t),
                60.0,
                ResourceVec::cpu_mem_disk(0.3, 0.1, 0.05),
            ));
        }
        out
    }

    #[test]
    fn runs_end_to_end_and_updates() {
        let mut mgr = RlPowerManager::new(2, fast_config());
        let mut cluster = Cluster::new(ClusterConfig::paper(2), bursty_jobs(200)).unwrap();
        let out = cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut mgr,
            RunLimit::unbounded(),
        );
        assert_eq!(out.totals.jobs_completed, 200);
        assert!(mgr.stats().decisions > 0);
        assert!(mgr.stats().updates > 0);
        assert!(mgr.stats().arrivals_observed == 200);
    }

    #[test]
    fn weight_one_prefers_sleeping() {
        // Pure power weight: the learned policy should sleep aggressively,
        // yielding clearly less energy than always-on.
        let mut config = fast_config();
        config.weight = 1.0;
        let mut mgr = RlPowerManager::new(1, config);
        let jobs = bursty_jobs(150);
        let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs.clone()).unwrap();
        let rl = cluster
            .run(
                &mut RoundRobinAllocator::new(),
                &mut mgr,
                RunLimit::unbounded(),
            )
            .totals
            .energy_joules;

        let mut cluster2 = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
        let on = cluster2
            .run(
                &mut RoundRobinAllocator::new(),
                &mut hierdrl_sim::policies::AlwaysOnPower,
                RunLimit::unbounded(),
            )
            .totals
            .energy_joules;
        assert!(
            rl < on * 0.8,
            "RL (w=1) used {rl} J, always-on {on} J — expected clear savings"
        );
    }

    #[test]
    fn weight_zero_prefers_staying_awake() {
        // Pure latency weight with bursty gaps: sleeping costs latency, so
        // the learned policy should approach the always-on latency.
        let mut config = fast_config();
        config.weight = 0.0;
        let mut mgr = RlPowerManager::new(1, config);
        let jobs = bursty_jobs(300);
        let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs.clone()).unwrap();
        let rl = cluster
            .run(
                &mut RoundRobinAllocator::new(),
                &mut mgr,
                RunLimit::unbounded(),
            )
            .totals
            .total_latency_s;

        let mut cluster2 = Cluster::new(ClusterConfig::paper(1), jobs.clone()).unwrap();
        let sleepy = cluster2
            .run(
                &mut RoundRobinAllocator::new(),
                &mut hierdrl_sim::policies::SleepImmediatelyPower,
                RunLimit::unbounded(),
            )
            .totals
            .total_latency_s;
        assert!(
            rl < sleepy,
            "RL (w=0) latency {rl} should beat sleep-immediately {sleepy}"
        );
    }

    #[test]
    fn per_server_agents_are_independent() {
        let mut mgr = RlPowerManager::new(3, fast_config());
        // All jobs to server 0 via a constant allocator.
        struct ToZero;
        impl hierdrl_sim::cluster::Allocator for ToZero {
            fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
                ServerId(0)
            }
        }
        let mut cluster = Cluster::new(ClusterConfig::paper(3), bursty_jobs(60)).unwrap();
        cluster.run(&mut ToZero, &mut mgr, RunLimit::unbounded());
        assert!(mgr.agents[0].predictor.observations() > 0);
        assert_eq!(mgr.agents[1].predictor.observations(), 0);
        assert_eq!(mgr.agents[2].predictor.observations(), 0);
    }

    #[test]
    fn shared_learning_pools_by_capacity_class() {
        // 2 big + 2 little servers: shared learning must give each class
        // its own table (2 tables), map equal-capacity servers to the same
        // one, and snapshots must round-trip through the cluster-aware
        // constructor.
        let mut cluster = ClusterConfig::paper(4);
        cluster.server_capacities = Some(vec![
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            ResourceVec::ones(3),
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            ResourceVec::ones(3),
        ]);
        let mgr = RlPowerManager::for_cluster(&cluster, fast_config());
        assert_eq!(mgr.num_tables(), 2);
        assert_eq!(mgr.agents[0].table, mgr.agents[2].table, "big pool");
        assert_eq!(mgr.agents[1].table, mgr.agents[3].table, "little pool");
        assert_ne!(
            mgr.agents[0].table, mgr.agents[1].table,
            "big and little servers must not share a table"
        );

        let snapshot = mgr.snapshot();
        assert_eq!(snapshot.tables.len(), 2);
        let restored = RlPowerManager::from_snapshot_for_cluster(&cluster, snapshot);
        assert_eq!(restored.num_tables(), 2);

        // Homogeneous clusters keep the paper's single shared table, and
        // per-server isolation still wins over class pooling when asked.
        assert_eq!(
            RlPowerManager::for_cluster(&ClusterConfig::paper(4), fast_config()).num_tables(),
            1
        );
        let mut isolated = fast_config();
        isolated.shared_learning = false;
        assert_eq!(
            RlPowerManager::for_cluster(&cluster, isolated).num_tables(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "do not match this cluster's")]
    fn snapshot_rejects_permuted_capacity_classes() {
        // Snapshot taken on [big, little] restored onto [little, big]:
        // table counts match, but class 0 would silently become the
        // little class — the restore must refuse.
        let mut cluster = ClusterConfig::paper(2);
        cluster.server_capacities = Some(vec![
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            ResourceVec::ones(3),
        ]);
        let snapshot = RlPowerManager::for_cluster(&cluster, fast_config()).snapshot();
        let mut permuted = ClusterConfig::paper(2);
        permuted.server_capacities = Some(vec![
            ResourceVec::ones(3),
            ResourceVec::new(&[2.0, 2.0, 2.0]),
        ]);
        let _ = RlPowerManager::from_snapshot_for_cluster(&permuted, snapshot);
    }

    #[test]
    fn class_tables_learn_independently() {
        // All jobs land on big server 0; the little class's table must
        // stay untouched.
        let mut cluster = ClusterConfig::paper(2);
        cluster.server_capacities = Some(vec![
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            ResourceVec::ones(3),
        ]);
        let mut mgr = RlPowerManager::for_cluster(&cluster, fast_config());
        struct ToZero;
        impl hierdrl_sim::cluster::Allocator for ToZero {
            fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
                ServerId(0)
            }
        }
        let mut sim = Cluster::new(cluster, bursty_jobs(120)).unwrap();
        sim.run(&mut ToZero, &mut mgr, RunLimit::unbounded());
        assert!(mgr.stats().updates > 0);
        let little = mgr.agents[1].table;
        assert_eq!(
            mgr.tables[little].num_states(),
            0,
            "the little class's table must not absorb big-server updates"
        );
    }

    #[test]
    fn run_begin_clears_timestamp_anchored_state() {
        let mut mgr = RlPowerManager::new(2, fast_config());
        let mut cluster = Cluster::new(ClusterConfig::paper(2), bursty_jobs(60)).unwrap();
        cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut mgr,
            RunLimit::unbounded(),
        );
        // Fake an aborted run: poison the state a finished run would have
        // cleared, as a harness that drops a cluster mid-run would leave it.
        for agent in &mut mgr.agents {
            agent.last_arrival = Some(SimTime::from_secs(1e6));
            agent.pending = Some(PendingDpm {
                state: 0,
                action: 0,
                time_s: 1e6,
                energy_j: 0.0,
                queue_integral: 0.0,
            });
        }
        mgr.on_run_begin();
        for agent in &mgr.agents {
            assert!(agent.last_arrival.is_none(), "last_arrival must reset");
            assert!(agent.pending.is_none(), "pending must reset");
        }
    }

    #[test]
    fn carrying_across_segments_fabricates_no_inter_arrival_gap() {
        // Segment A ends late (~45,000 s); segment B's first arrivals land
        // within seconds of its own time zero. A leaked last-arrival mark
        // would feed the predictor a negative gap at the boundary — which
        // the predictor now rejects and counts. The regression contract is
        // exact: zero rejections, and per-segment observation counts that
        // match independent runs (one unobservable gap per server per
        // segment, never one fewer).
        let mut mgr = RlPowerManager::new(1, fast_config());
        let seg_a = bursty_jobs(90);
        let seg_b = bursty_jobs(60);
        let mut cluster = Cluster::new(ClusterConfig::paper(1), seg_a).unwrap();
        cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut mgr,
            RunLimit::unbounded(),
        );
        assert_eq!(mgr.predictor_observations(), 89);
        let mut cluster = Cluster::new(ClusterConfig::paper(1), seg_b).unwrap();
        cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut mgr,
            RunLimit::unbounded(),
        );
        assert_eq!(
            mgr.predictor_observations(),
            89 + 59,
            "the cross-segment boundary must contribute no observation"
        );
        assert_eq!(
            mgr.rejected_observations(),
            0,
            "no fabricated (non-positive) gap may reach the predictor"
        );
    }

    #[test]
    fn frozen_manager_stops_learning_but_keeps_deciding() {
        let mut mgr = RlPowerManager::new(2, fast_config());
        let jobs = bursty_jobs(120);
        let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs.clone()).unwrap();
        cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut mgr,
            RunLimit::unbounded(),
        );
        let (updates, decisions) = (mgr.stats().updates, mgr.stats().decisions);
        assert!(updates > 0);
        let trained_steps: u64 = mgr
            .agents
            .iter()
            .map(|a| a.predictor.training_steps())
            .sum();

        mgr.set_learning(false);
        let mut cluster = Cluster::new(ClusterConfig::paper(2), jobs).unwrap();
        let out = cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut mgr,
            RunLimit::unbounded(),
        );
        assert_eq!(out.totals.jobs_completed, 120, "frozen manager still runs");
        assert_eq!(mgr.stats().updates, updates, "no Q updates while frozen");
        assert!(mgr.stats().decisions > decisions, "decisions keep flowing");
        assert_eq!(
            mgr.agents
                .iter()
                .map(|a| a.predictor.training_steps())
                .sum::<u64>(),
            trained_steps,
            "predictor weights frozen too"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = fast_config();
        c.timeouts.clear();
        assert!(c.validate().is_err());

        let mut c = fast_config();
        c.weight = 1.5;
        assert!(c.validate().is_err());

        let mut c = fast_config();
        c.iat_bins = 1;
        assert!(c.validate().is_err());
    }
}
