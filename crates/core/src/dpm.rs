//! The local tier: distributed RL-based dynamic power management
//! (Section VI-B, Algorithm 2).
//!
//! Each server independently runs a model-free continuous-time Q-learning
//! agent over *timeout* actions (including immediate shutdown). Decision
//! epochs follow the paper's three cases; the RL state is the predicted
//! next inter-arrival time (from the per-server LSTM predictor) discretized
//! into `n` categories. The reward rate is
//! `r(t) = -w * P(t) - (1 - w) * JQ(t)` (Eqn. 5) with power normalized by
//! peak watts; sweeping `w` traces the power/latency trade-off of Fig. 10.
//!
//! Because the paper's cases (2) and (3) admit exactly one action, this
//! implementation performs the SMDP value update from one case-(1) epoch to
//! the next, integrating the reward over the whole (possibly busy) sojourn
//! — equivalent to the per-case update under forced transitions, with fewer
//! bookkeeping states.

use crate::predictor::{IatPredictor, LstmIatPredictor, PredictorConfig};
use hierdrl_rl::discretize::Discretizer;
use hierdrl_rl::policy::{EpsilonGreedy, EpsilonSchedule};
use hierdrl_rl::qtable::QTable;
use hierdrl_rl::smdp::SmdpParams;
use hierdrl_sim::cluster::{ClusterView, PowerManager, TimeoutDecision};
use hierdrl_sim::job::ServerId;
use hierdrl_sim::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the RL power manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlPowerConfig {
    /// Timeout action set in seconds; must include at least one value.
    /// `0` means immediate shutdown.
    pub timeouts: Vec<f64>,
    /// Power-vs-latency weight `w` in `[0, 1]` (Eqn. 5): 1 favors power
    /// saving, 0 favors latency.
    pub weight: f64,
    /// SMDP Q-learning parameters.
    pub smdp: SmdpParams,
    /// Exploration schedule (per server).
    pub epsilon: EpsilonSchedule,
    /// Number of predicted-inter-arrival categories `n`.
    pub iat_bins: usize,
    /// Log-spaced bin range for predicted inter-arrival times, seconds.
    pub iat_range: (f64, f64),
    /// Per-server LSTM predictor configuration.
    pub predictor: PredictorConfig,
    /// Share one Q-table across all (homogeneous) servers instead of
    /// learning per-server tables. Decisions remain local and distributed;
    /// only the learned values are pooled — the same weight-sharing
    /// rationale the paper applies to its Sub-Q networks, and it multiplies
    /// the effective data per state-action pair by `M`.
    pub shared_learning: bool,
    /// Base RNG seed (each server derives its own).
    pub seed: u64,
}

impl Default for RlPowerConfig {
    fn default() -> Self {
        Self {
            timeouts: vec![0.0, 60.0, 180.0, 600.0, 1800.0],
            weight: 0.5,
            // Sleep/stay-awake pay-offs materialize over the following idle
            // period (up to ~10 min), so the local discount horizon must
            // cover it: beta = 0.003/s gives a ~5-6 minute horizon. Alpha is
            // high because per-server decision epochs are scarce.
            smdp: SmdpParams::new(0.3, 0.003),
            epsilon: EpsilonSchedule::Exponential {
                start: 0.4,
                end: 0.02,
                tau: 100.0,
            },
            iat_bins: 5,
            iat_range: (10.0, 3600.0),
            predictor: PredictorConfig::default(),
            shared_learning: true,
            seed: 11,
        }
    }
}

impl RlPowerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.timeouts.is_empty() {
            return Err("need at least one timeout action".into());
        }
        if self.timeouts.iter().any(|t| !(t.is_finite() && *t >= 0.0)) {
            return Err("timeouts must be finite and non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.weight) {
            return Err(format!("weight must be in [0, 1], got {}", self.weight));
        }
        if self.iat_bins < 2 {
            return Err("need at least two inter-arrival bins".into());
        }
        if !(self.iat_range.0 > 0.0 && self.iat_range.0 < self.iat_range.1) {
            return Err(format!(
                "iat_range invalid: ({}, {})",
                self.iat_range.0, self.iat_range.1
            ));
        }
        self.epsilon.validate()?;
        Ok(())
    }
}

/// A serializable snapshot of the trained local-tier policy: the learned
/// Q-table(s) and configuration. Predictors restart cold (they need only a
/// look-back window of arrivals to warm up).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpmSnapshot {
    /// Full power-manager configuration.
    pub config: RlPowerConfig,
    /// Learned Q-tables (one when `shared_learning`, else one per server).
    pub tables: Vec<QTable<u16>>,
    /// Statistics at snapshot time.
    pub stats: DpmStats,
}

/// Aggregate statistics across all per-server agents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DpmStats {
    /// Case-(1) decision epochs handled.
    pub decisions: u64,
    /// SMDP value updates applied.
    pub updates: u64,
    /// Total arrivals observed by the predictors.
    pub arrivals_observed: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingDpm {
    state: u16,
    action: usize,
    time_s: f64,
    energy_j: f64,
    queue_integral: f64,
}

/// One server's power-management agent.
#[derive(Debug)]
struct ServerAgent {
    predictor: LstmIatPredictor,
    /// Index into the manager's table pool (0 when learning is shared).
    table: usize,
    policy: EpsilonGreedy,
    rng: StdRng,
    pending: Option<PendingDpm>,
    last_arrival: Option<SimTime>,
}

/// The distributed RL power manager (implements [`PowerManager`]).
///
/// Holds one agent per server — the paper's "distributed manner": every
/// decision uses only that server's local state and predictor. With
/// [`RlPowerConfig::shared_learning`] (the default) the homogeneous
/// servers pool their learned Q-values, exactly as the paper's Sub-Q
/// networks share weights; set it to `false` for fully isolated tables.
#[derive(Debug)]
pub struct RlPowerManager {
    config: RlPowerConfig,
    discretizer: Discretizer,
    agents: Vec<ServerAgent>,
    tables: Vec<QTable<u16>>,
    stats: DpmStats,
}

impl RlPowerManager {
    /// Builds a manager for `num_servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `num_servers == 0`.
    pub fn new(num_servers: usize, config: RlPowerConfig) -> Self {
        assert!(num_servers > 0, "need at least one server");
        config.validate().expect("invalid RL power config");
        let discretizer =
            Discretizer::log_spaced(config.iat_range.0, config.iat_range.1, config.iat_bins);
        let agents: Vec<ServerAgent> = (0..num_servers)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64 * 7919));
                ServerAgent {
                    predictor: LstmIatPredictor::new(config.predictor, &mut rng),
                    table: if config.shared_learning { 0 } else { i },
                    policy: EpsilonGreedy::new(config.epsilon),
                    rng,
                    pending: None,
                    last_arrival: None,
                }
            })
            .collect();
        let table_count = if config.shared_learning {
            1
        } else {
            num_servers
        };
        let tables = (0..table_count)
            .map(|_| QTable::new(config.timeouts.len(), 0.0))
            .collect();
        Self {
            config,
            discretizer,
            agents,
            tables,
            stats: DpmStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RlPowerConfig {
        &self.config
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DpmStats {
        &self.stats
    }

    /// Captures a serializable snapshot of the learned policy.
    pub fn snapshot(&self) -> DpmSnapshot {
        DpmSnapshot {
            config: self.config.clone(),
            tables: self.tables.clone(),
            stats: self.stats,
        }
    }

    /// Reconstructs a manager for `num_servers` servers from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's table count is incompatible with
    /// `num_servers` under its own `shared_learning` setting.
    pub fn from_snapshot(num_servers: usize, snapshot: DpmSnapshot) -> Self {
        let expected = if snapshot.config.shared_learning {
            1
        } else {
            num_servers
        };
        assert_eq!(
            snapshot.tables.len(),
            expected,
            "snapshot has {} tables, expected {expected}",
            snapshot.tables.len()
        );
        let mut mgr = Self::new(num_servers, snapshot.config);
        mgr.tables = snapshot.tables;
        mgr.stats = snapshot.stats;
        mgr
    }

    /// Mean one-step prediction MSE (normalized space) across servers whose
    /// predictors have scored at least one prediction.
    pub fn mean_predictor_mse(&self) -> Option<f64> {
        let scores: Vec<f64> = self
            .agents
            .iter()
            .filter_map(|a| a.predictor.normalized_mse())
            .collect();
        (!scores.is_empty()).then(|| scores.iter().sum::<f64>() / scores.len() as f64)
    }

    fn state_for(&self, agent: &ServerAgent) -> u16 {
        let predicted = agent.predictor.predict().unwrap_or(self.config.iat_range.1);
        self.discretizer.bin(predicted) as u16
    }
}

/// Computes the reward rate (Eqn. 5) and sojourn over a closed interval
/// from per-server integral deltas. `None` for an empty interval.
fn reward_rate(
    weight: f64,
    pending: &PendingDpm,
    now_s: f64,
    energy_j: f64,
    queue_integral: f64,
    peak_watts: f64,
) -> Option<(f64, f64)> {
    let tau = now_s - pending.time_s;
    if tau <= 0.0 {
        return None;
    }
    let avg_power_norm = (energy_j - pending.energy_j) / tau / peak_watts;
    let avg_jq = (queue_integral - pending.queue_integral) / tau;
    Some((-(weight * avg_power_norm + (1.0 - weight) * avg_jq), tau))
}

impl PowerManager for RlPowerManager {
    fn on_idle(
        &mut self,
        server: ServerId,
        view: &ClusterView<'_>,
        now: SimTime,
    ) -> TimeoutDecision {
        self.stats.decisions += 1;
        let (energy_j, queue_integral) = {
            let st = view.server(server).stats();
            (st.energy_joules, st.jobs_in_system_integral)
        };
        let peak = view.config().power.peak_watts;
        let weight = self.config.weight;
        let smdp = self.config.smdp;

        let state = self.state_for(&self.agents[server.0]);
        // Close the previous case-(1) decision with the observed sojourn.
        let table = self.agents[server.0].table;
        let agent = &mut self.agents[server.0];
        if let Some(p) = agent.pending.take() {
            if let Some((r, tau)) =
                reward_rate(weight, &p, now.as_secs(), energy_j, queue_integral, peak)
            {
                self.tables[table].update_smdp(&smdp, &p.state, p.action, r, tau, &state);
                self.stats.updates += 1;
            }
        }

        let agent = &mut self.agents[server.0];
        let action = agent
            .policy
            .select(&self.tables[table].q_row(&state), &mut agent.rng);
        agent.pending = Some(PendingDpm {
            state,
            action,
            time_s: now.as_secs(),
            energy_j,
            queue_integral,
        });

        let timeout = self.config.timeouts[action];
        if timeout == 0.0 {
            TimeoutDecision::SleepNow
        } else {
            TimeoutDecision::After(timeout)
        }
    }

    fn on_job_arrival(&mut self, server: ServerId, _view: &ClusterView<'_>, now: SimTime) {
        self.stats.arrivals_observed += 1;
        let agent = &mut self.agents[server.0];
        if let Some(last) = agent.last_arrival {
            agent.predictor.observe(now.since(last));
        }
        agent.last_arrival = Some(now);
    }

    fn on_run_end(&mut self, _view: &ClusterView<'_>) {
        // A later run (e.g. the next pre-training segment) restarts the
        // clock at zero: the final pending transition has no successor
        // epoch, and an inter-arrival gap must never span two runs.
        for agent in &mut self.agents {
            agent.pending = None;
            agent.last_arrival = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdrl_sim::cluster::{Cluster, RunLimit};
    use hierdrl_sim::config::ClusterConfig;
    use hierdrl_sim::job::{Job, JobId};
    use hierdrl_sim::policies::RoundRobinAllocator;
    use hierdrl_sim::resources::ResourceVec;

    fn fast_config() -> RlPowerConfig {
        RlPowerConfig {
            predictor: PredictorConfig {
                lookback: 5,
                hidden: 6,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn bursty_jobs(n: u64) -> Vec<Job> {
        // Bursts of 3 jobs, long quiet gaps.
        let mut out = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            if i % 3 == 0 {
                t += 900.0;
            } else {
                t += 20.0;
            }
            out.push(Job::new(
                JobId(i),
                SimTime::from_secs(t),
                60.0,
                ResourceVec::cpu_mem_disk(0.3, 0.1, 0.05),
            ));
        }
        out
    }

    #[test]
    fn runs_end_to_end_and_updates() {
        let mut mgr = RlPowerManager::new(2, fast_config());
        let mut cluster = Cluster::new(ClusterConfig::paper(2), bursty_jobs(200)).unwrap();
        let out = cluster.run(
            &mut RoundRobinAllocator::new(),
            &mut mgr,
            RunLimit::unbounded(),
        );
        assert_eq!(out.totals.jobs_completed, 200);
        assert!(mgr.stats().decisions > 0);
        assert!(mgr.stats().updates > 0);
        assert!(mgr.stats().arrivals_observed == 200);
    }

    #[test]
    fn weight_one_prefers_sleeping() {
        // Pure power weight: the learned policy should sleep aggressively,
        // yielding clearly less energy than always-on.
        let mut config = fast_config();
        config.weight = 1.0;
        let mut mgr = RlPowerManager::new(1, config);
        let jobs = bursty_jobs(150);
        let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs.clone()).unwrap();
        let rl = cluster
            .run(
                &mut RoundRobinAllocator::new(),
                &mut mgr,
                RunLimit::unbounded(),
            )
            .totals
            .energy_joules;

        let mut cluster2 = Cluster::new(ClusterConfig::paper(1), jobs).unwrap();
        let on = cluster2
            .run(
                &mut RoundRobinAllocator::new(),
                &mut hierdrl_sim::policies::AlwaysOnPower,
                RunLimit::unbounded(),
            )
            .totals
            .energy_joules;
        assert!(
            rl < on * 0.8,
            "RL (w=1) used {rl} J, always-on {on} J — expected clear savings"
        );
    }

    #[test]
    fn weight_zero_prefers_staying_awake() {
        // Pure latency weight with bursty gaps: sleeping costs latency, so
        // the learned policy should approach the always-on latency.
        let mut config = fast_config();
        config.weight = 0.0;
        let mut mgr = RlPowerManager::new(1, config);
        let jobs = bursty_jobs(300);
        let mut cluster = Cluster::new(ClusterConfig::paper(1), jobs.clone()).unwrap();
        let rl = cluster
            .run(
                &mut RoundRobinAllocator::new(),
                &mut mgr,
                RunLimit::unbounded(),
            )
            .totals
            .total_latency_s;

        let mut cluster2 = Cluster::new(ClusterConfig::paper(1), jobs.clone()).unwrap();
        let sleepy = cluster2
            .run(
                &mut RoundRobinAllocator::new(),
                &mut hierdrl_sim::policies::SleepImmediatelyPower,
                RunLimit::unbounded(),
            )
            .totals
            .total_latency_s;
        assert!(
            rl < sleepy,
            "RL (w=0) latency {rl} should beat sleep-immediately {sleepy}"
        );
    }

    #[test]
    fn per_server_agents_are_independent() {
        let mut mgr = RlPowerManager::new(3, fast_config());
        // All jobs to server 0 via a constant allocator.
        struct ToZero;
        impl hierdrl_sim::cluster::Allocator for ToZero {
            fn select(&mut self, _job: &Job, _view: &ClusterView<'_>) -> ServerId {
                ServerId(0)
            }
        }
        let mut cluster = Cluster::new(ClusterConfig::paper(3), bursty_jobs(60)).unwrap();
        cluster.run(&mut ToZero, &mut mgr, RunLimit::unbounded());
        assert!(mgr.agents[0].predictor.observations() > 0);
        assert_eq!(mgr.agents[1].predictor.observations(), 0);
        assert_eq!(mgr.agents[2].predictor.observations(), 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = fast_config();
        c.timeouts.clear();
        assert!(c.validate().is_err());

        let mut c = fast_config();
        c.weight = 1.5;
        assert!(c.validate().is_err());

        let mut c = fast_config();
        c.iat_bins = 1;
        assert!(c.validate().is_err());
    }
}
