//! The global tier: DRL-based cloud resource (VM) allocation (Section V).
//!
//! The job broker is controlled by a DRL agent. Decisions are event-driven
//! and continuous-time: one per job arrival, with the action being the
//! target server, which keeps the action space enumerable (`|M|`). Value
//! updates follow Q-learning for SMDP (Eqn. 2); the Q-function is the
//! weight-shared, autoencoder-compressed DNN of [`crate::dqn`]; transitions
//! are replayed from an experience memory (Algorithm 1).

use crate::dqn::{GroupedQNetwork, QNetworkConfig, QSample};
use crate::reward::{reward_rate_between, RewardWeights};
use crate::state::{GlobalState, StateEncoder, StateEncoderConfig};
use hierdrl_neural::matrix::Matrix;
use hierdrl_rl::policy::{EpsilonGreedy, EpsilonSchedule};
use hierdrl_rl::replay::ReplayMemory;
use hierdrl_rl::smdp::{smdp_target, SmdpParams};
use hierdrl_sim::cluster::{Allocator, ClusterView};
use hierdrl_sim::job::{Job, ServerId};
use hierdrl_sim::metrics::ClusterTotals;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Full configuration of the DRL allocator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrlAllocatorConfig {
    /// State-vector layout (group count, enrichment flags).
    pub state: StateEncoderConfig,
    /// Q-network hyper-parameters.
    pub qnet: QNetworkConfig,
    /// Reward weights (Eqn. 4).
    pub reward: RewardWeights,
    /// SMDP Q-learning parameters (`alpha` blends stored targets, `beta` is
    /// the continuous-time discount; paper: `beta = 0.5`).
    pub smdp: SmdpParams,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Probability of following the first-fit *guide* policy instead of the
    /// epsilon-greedy DNN policy, as a function of the decision counter.
    /// Algorithm 1 collects offline experience under "certain control
    /// policies ... arbitrary policy and gradually refined policy"; using a
    /// sensible behavior policy early fills the experience memory with
    /// consolidation states the random-init network would rarely reach.
    /// Anneal to 0 so evaluation is pure DRL.
    pub guide: EpsilonSchedule,
    /// Scale factor applied to reward rates before the SMDP target (sets
    /// the magnitude of Q values; `beta` keeps Q near the average reward
    /// rate, which conditions DNN fitting far better than `r/beta`-sized
    /// targets under gradient clipping). Purely a units change: the argmax
    /// policy is invariant.
    pub reward_scale: f64,
    /// Clamp stored Q targets to `[-q_clamp, 0]`. Rewards are never
    /// positive, so every true Q value is non-positive; the upper clamp
    /// provably removes the max-operator overestimation spiral that plain
    /// DQN suffers without a target network (batched arrivals make
    /// near-zero sojourns — and therefore near-pure bootstrap targets —
    /// common).
    pub q_clamp: f64,
    /// Uniform noise half-width added to Q values at action selection,
    /// breaking argmax lock-in between near-indifferent servers (prevents
    /// pathological single-server pile-ups while the network is young).
    pub q_dither: f64,
    /// Experience-memory capacity `N_D`.
    pub replay_capacity: usize,
    /// Minibatch size for DNN fitting.
    pub minibatch: usize,
    /// Train the DNN every this many decisions (after warm-up).
    pub train_interval: u64,
    /// Copy the online network into the target network every this many
    /// training steps (deep Q-learning stabilization per Mnih et al. 2015,
    /// the paper's reference \[25\]).
    pub target_sync: u64,
    /// Decisions before DNN training starts.
    pub warmup_decisions: u64,
    /// Group-state samples to collect before pre-training the autoencoder
    /// online (0 disables the automatic pre-training).
    pub ae_pretrain_samples: usize,
    /// Autoencoder pre-training epochs.
    pub ae_epochs: usize,
    /// Autoencoder pre-training minibatch size.
    pub ae_batch: usize,
    /// Autoencoder pre-training learning rate.
    pub ae_learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DrlAllocatorConfig {
    fn default() -> Self {
        Self {
            state: StateEncoderConfig::default(),
            qnet: QNetworkConfig::default(),
            reward: RewardWeights::balanced(),
            // The paper quotes beta = 0.5 without fixing the time unit; at
            // ~6-20 s inter-arrivals, 0.5/s makes the bootstrap term vanish
            // (e^{-beta*tau} ~ 0), and any horizon shorter than a job
            // duration (~850 s) truncates the queueing penalty while the
            // wake-up cost lands in full — making queueing look cheap.
            // 0.002/s gives a ~500 s horizon, on the scale of one job.
            smdp: SmdpParams::new(0.9, 0.002),
            epsilon: EpsilonSchedule::Exponential {
                start: 0.4,
                end: 0.02,
                tau: 4_000.0,
            },
            guide: EpsilonSchedule::Exponential {
                start: 0.9,
                end: 0.35,
                tau: 6_000.0,
            },
            reward_scale: 0.002,
            q_clamp: 300.0,
            q_dither: 0.003,
            replay_capacity: 6_000,
            minibatch: 32,
            train_interval: 2,
            target_sync: 250,
            warmup_decisions: 400,
            ae_pretrain_samples: 3_000,
            ae_epochs: 20,
            ae_batch: 32,
            ae_learning_rate: 2e-3,
            seed: 7,
        }
    }
}

/// A serializable snapshot of a trained global-tier policy: everything
/// needed to act (and keep learning) minus the transient run state
/// (pending transition, replay memory, RNG).
///
/// # Examples
///
/// ```
/// use hierdrl_core::allocator::{DrlAllocator, DrlAllocatorConfig};
///
/// let allocator = DrlAllocator::new(4, 3, DrlAllocatorConfig::default());
/// let json = serde_json::to_string(&allocator.snapshot()).unwrap();
/// let restored = DrlAllocator::from_snapshot(serde_json::from_str(&json).unwrap());
/// assert_eq!(restored.config(), allocator.config());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrlSnapshot {
    /// Full allocator configuration.
    pub config: DrlAllocatorConfig,
    /// State-vector layout.
    pub encoder: StateEncoder,
    /// Trained Q-network (including optimizer state).
    pub qnet: GroupedQNetwork,
    /// Exploration-policy state (schedule position).
    pub policy: EpsilonGreedy,
    /// Cluster size the policy was trained for.
    pub num_servers: usize,
    /// Learner statistics at snapshot time.
    pub stats: DrlStats,
}

/// Running statistics of the learner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DrlStats {
    /// Decision epochs seen.
    pub decisions: u64,
    /// DNN minibatch updates performed.
    pub train_steps: u64,
    /// Exponential moving average of the training loss.
    pub loss_ema: f64,
    /// Whether the autoencoder pre-training has run.
    pub autoencoder_trained: bool,
    /// Final reconstruction loss of the autoencoder pre-training.
    pub autoencoder_loss: f64,
}

#[derive(Debug)]
struct Pending {
    state: GlobalState,
    action: usize,
    time_s: f64,
    totals: ClusterTotals,
}

/// A raw state transition, exactly what Algorithm 1 (line 10) stores in the
/// experience memory: `(s_k, a_k, r_k, s_{k+1})` plus the sojourn time the
/// continuous-time update needs.
#[derive(Debug, Clone)]
struct Transition {
    state: GlobalState,
    action: usize,
    reward_rate: f64,
    sojourn: f64,
    next_state: GlobalState,
    /// Target-network evaluations memoized per target-net era (see
    /// [`TargetCache`]). Interior mutability because the replay memory
    /// hands out shared references at sampling time.
    cache: Cell<Option<TargetCache>>,
}

/// Memoized target-network evaluations for one transition.
///
/// Between two target-network syncs the target net is frozen, so
/// `max_a Q_target(s', a)` and `Q_target(s, a)` are pure functions of the
/// transition — and every kernel in the neural substrate is deterministic
/// and row-independent, so recomputing them in a *different* minibatch
/// yields bitwise-identical `f32`s. Sampling the same transition twice in
/// one era (the common case: the replay memory is resampled ~16x per
/// target-sync window) can therefore reuse the stored values instead of
/// re-running the two target-net GEMM sweeps, changing nothing about the
/// learning trajectory. Entries are invalidated wholesale by bumping the
/// era counter at each sync.
#[derive(Debug, Clone, Copy)]
struct TargetCache {
    /// Target-net era (sync count) the values were computed under.
    era: u64,
    /// `max_a Q_target(next_state, a)` over the real (non-padding) actions.
    max_next: f32,
    /// `Q_target(state, action)` for the taken action.
    prev: f32,
}

/// The DRL-based global-tier allocator (implements [`Allocator`]).
///
/// Learning is fully online, exactly as in the paper's deep Q-learning
/// phase: at each decision epoch the previous transition's Q estimate is
/// updated via Eqn. (2) and stored in the experience memory, and the DNN is
/// periodically refit to the stored estimates. Call
/// [`DrlAllocator::set_learning`] to freeze the policy for evaluation.
#[derive(Debug)]
pub struct DrlAllocator {
    config: DrlAllocatorConfig,
    encoder: StateEncoder,
    qnet: GroupedQNetwork,
    target_net: GroupedQNetwork,
    replay: ReplayMemory<Transition>,
    policy: EpsilonGreedy,
    rng: StdRng,
    pending: Option<Pending>,
    num_servers: usize,
    learning: bool,
    ae_buffer: Vec<Vec<f32>>,
    stats: DrlStats,
    /// Target-net era: bumped at every target sync, invalidating all
    /// [`TargetCache`] entries at once.
    target_era: u64,
    /// Escape hatch for the equivalence test: `false` recomputes every
    /// target through the network sweeps, the retained reference behaviour.
    use_target_cache: bool,
}

impl DrlAllocator {
    /// Builds an allocator for a cluster of `num_servers` servers with
    /// `resource_dims` resources.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (zero
    /// minibatch, invalid schedule, etc.).
    pub fn new(num_servers: usize, resource_dims: usize, config: DrlAllocatorConfig) -> Self {
        assert!(config.minibatch > 0, "minibatch must be positive");
        assert!(config.train_interval > 0, "train_interval must be positive");
        assert!(config.target_sync > 0, "target_sync must be positive");
        config.reward.validate().expect("invalid reward weights");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let encoder = StateEncoder::new(num_servers, resource_dims, config.state);
        let qnet = GroupedQNetwork::new(&encoder, config.qnet, &mut rng);
        let replay = ReplayMemory::new(config.replay_capacity);
        let policy = EpsilonGreedy::new(config.epsilon);
        Self {
            encoder,
            target_net: qnet.clone(),
            qnet,
            replay,
            policy,
            rng,
            pending: None,
            num_servers,
            learning: true,
            ae_buffer: Vec::new(),
            config,
            stats: DrlStats::default(),
            target_era: 0,
            use_target_cache: true,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DrlAllocatorConfig {
        &self.config
    }

    /// Learner statistics.
    pub fn stats(&self) -> &DrlStats {
        &self.stats
    }

    /// The state encoder (layout information).
    pub fn state_encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// Enables or disables learning (exploration continues per schedule;
    /// with learning off the network and replay memory are frozen).
    pub fn set_learning(&mut self, on: bool) {
        self.learning = on;
    }

    /// Test-only switch to the retained reference behaviour: recompute
    /// every SMDP target through the target-net sweeps instead of reusing
    /// per-era memoized values (which must be — and is tested to be —
    /// bitwise indistinguishable).
    #[cfg(test)]
    fn set_target_cache(&mut self, on: bool) {
        self.use_target_cache = on;
    }

    /// Captures a serializable snapshot of the trained policy.
    pub fn snapshot(&self) -> DrlSnapshot {
        DrlSnapshot {
            config: self.config.clone(),
            encoder: self.encoder.clone(),
            qnet: self.qnet.clone(),
            policy: self.policy.clone(),
            num_servers: self.num_servers,
            stats: self.stats,
        }
    }

    /// Reconstructs an allocator from a snapshot. The replay memory starts
    /// empty and the RNG is re-seeded from the config; the trained network,
    /// schedule position, and statistics are preserved.
    pub fn from_snapshot(snapshot: DrlSnapshot) -> Self {
        let rng = StdRng::seed_from_u64(snapshot.config.seed ^ 0x9e3779b97f4a7c15);
        Self {
            target_net: snapshot.qnet.clone(),
            replay: ReplayMemory::new(snapshot.config.replay_capacity),
            rng,
            pending: None,
            learning: true,
            ae_buffer: Vec::new(),
            encoder: snapshot.encoder,
            qnet: snapshot.qnet,
            policy: snapshot.policy,
            num_servers: snapshot.num_servers,
            stats: snapshot.stats,
            config: snapshot.config,
            target_era: 0,
            use_target_cache: true,
        }
    }

    /// Pre-trains the autoencoder on explicit group-state rows (each of
    /// width `group_width`). Also called automatically once
    /// `ae_pretrain_samples` rows have been observed online.
    pub fn pretrain_autoencoder(&mut self, rows: &Matrix) {
        let loss = self.qnet.pretrain_autoencoder(
            rows,
            self.config.ae_epochs,
            self.config.ae_batch,
            self.config.ae_learning_rate,
        );
        self.stats.autoencoder_trained = true;
        self.stats.autoencoder_loss = loss as f64;
    }

    fn maybe_collect_ae_sample(&mut self, state: &GlobalState) {
        if self.stats.autoencoder_trained || self.config.ae_pretrain_samples == 0 {
            return;
        }
        for g in &state.groups {
            self.ae_buffer.push(g.clone());
        }
        if self.ae_buffer.len() >= self.config.ae_pretrain_samples {
            let rows: Vec<&[f32]> = self.ae_buffer.iter().map(|r| r.as_slice()).collect();
            let data = Matrix::from_rows(&rows);
            self.pretrain_autoencoder(&data);
            self.ae_buffer.clear();
        }
    }

    fn close_pending(&mut self, next_state: &GlobalState, view: &ClusterView<'_>) {
        let Some(p) = self.pending.take() else {
            return;
        };
        let tau = (view.totals().time_s - p.time_s).max(0.0);
        // Aggregate fleet peak: capacity-scaled on heterogeneous fleets,
        // exactly `M * peak_watts` on homogeneous ones. Both the peak and
        // the server count track the *live* fleet so elastic membership
        // changes rescale the reward normalization (on fixed fleets
        // `num_live == num_servers` and nothing changes).
        let reward_rate = self.config.reward_scale
            * reward_rate_between(
                &p.totals,
                view.totals(),
                &self.config.reward,
                view.num_live(),
                view.fleet_peak_watts(),
            );
        self.replay.push(Transition {
            state: p.state,
            action: p.action,
            reward_rate,
            sojourn: tau,
            next_state: next_state.clone(),
            cache: Cell::new(None),
        });
    }

    /// Consolidating guide action: the lowest-numbered awake server where
    /// the job fits immediately within the anti-colocation cap; otherwise
    /// the lowest-numbered sleeping server; otherwise the least-loaded
    /// server. (First-fit; a stable server ordering keeps the awake set
    /// small and maximizes sleeping time.)
    fn guided_action(&mut self, job: &Job, view: &ClusterView<'_>) -> usize {
        let cap = view.config().reliability.hot_queue_len;
        let mut sleeping: Option<usize> = None;
        let mut fallback = (usize::MAX, 0usize);
        for (i, s) in view.servers().iter().enumerate() {
            if !s.is_live() {
                continue; // departed slot: never a consolidation target
            }
            if s.state().is_on() {
                if s.queue_len() == 0
                    && s.jobs_in_system() < cap
                    && s.used().fits_with(&job.demand, s.capacity())
                {
                    return i;
                }
                if s.jobs_in_system() < fallback.0 {
                    fallback = (s.jobs_in_system(), i);
                }
            } else if sleeping.is_none() {
                sleeping = Some(i);
            }
        }
        sleeping.unwrap_or(fallback.1)
    }

    fn maybe_train(&mut self) {
        if !self.learning
            || self.stats.decisions < self.config.warmup_decisions
            || !self
                .stats
                .decisions
                .is_multiple_of(self.config.train_interval)
            || self.replay.len() < self.config.minibatch
        {
            return;
        }
        // Sample by reference — only each transition's `state` needs an
        // owned copy (for its QSample); cloning whole transitions would
        // deep-copy every next-state for nothing.
        let transitions: Vec<&Transition> =
            self.replay.sample(self.config.minibatch, &mut self.rng);
        // Fresh SMDP targets from the frozen target network (Eqn. 2 with
        // the target net as the previous estimate), clamped to the feasible
        // range: rewards are non-positive, so true Q values are too — the
        // upper clamp removes the max-operator overestimation spiral.
        // Transitions already evaluated under the *current* target net (the
        // net is frozen between syncs) reuse their memoized values; only
        // cache misses go through the network. One batched sweep per role
        // over the misses: all next-states in one GEMM pair (the max needs
        // every action), all previous states in another that only evaluates
        // the taken action's Sub-Q row. Each miss is encoded exactly once,
        // and every value — cached or fresh — is bitwise identical to a
        // per-transition `q_values`/`max_q` sweep (row independence).
        let era = self.target_era;
        let misses: Vec<usize> = transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !self.use_target_cache || !matches!(t.cache.get(), Some(c) if c.era == era)
            })
            .map(|(i, _)| i)
            .collect();
        let next_states: Vec<&GlobalState> =
            misses.iter().map(|&i| &transitions[i].next_state).collect();
        let next_q = self.target_net.q_values_batch(&next_states);
        let prev_items: Vec<(&GlobalState, usize)> = misses
            .iter()
            .map(|&i| (&transitions[i].state, transitions[i].action))
            .collect();
        let prev_q = self.target_net.q_action_batch(&prev_items);
        for ((&i, nq), prev) in misses.iter().zip(&next_q).zip(prev_q) {
            transitions[i].cache.set(Some(TargetCache {
                era,
                max_next: GroupedQNetwork::max_q_of(nq, self.num_servers),
                prev,
            }));
        }
        let batch: Vec<QSample> = transitions
            .into_iter()
            .map(|t| {
                let cached = t.cache.get().expect("miss pass filled every cache entry");
                debug_assert_eq!(cached.era, era, "stale target cache survived the miss pass");
                let raw = smdp_target(
                    &self.config.smdp,
                    t.reward_rate,
                    t.sojourn,
                    f64::from(cached.max_next),
                );
                let prev = f64::from(cached.prev);
                let blended = prev + self.config.smdp.alpha * (raw - prev);
                QSample {
                    state: t.state.clone(),
                    action: t.action,
                    target: blended.clamp(-self.config.q_clamp, 0.0) as f32,
                }
            })
            .collect();
        let loss = self.qnet.train_batch(&batch) as f64;
        self.stats.train_steps += 1;
        if self
            .stats
            .train_steps
            .is_multiple_of(self.config.target_sync)
        {
            self.target_net = self.qnet.clone();
            self.target_era += 1;
        }
        self.stats.loss_ema = if self.stats.train_steps == 1 {
            loss
        } else {
            0.99 * self.stats.loss_ema + 0.01 * loss
        };
    }
}

impl Allocator for DrlAllocator {
    fn select(&mut self, job: &Job, view: &ClusterView<'_>) -> ServerId {
        self.stats.decisions += 1;
        let state = self.encoder.encode(job, view);
        self.maybe_collect_ae_sample(&state);

        if self.learning {
            self.close_pending(&state, view);
            self.maybe_train();
        } else {
            self.pending = None;
        }

        let q = self.qnet.q_values(&state);
        let dither = self.config.q_dither;
        // Elastic fleets: actions are masked to the slots that exist right
        // now — a view narrower than the declared width means trailing
        // servers have not joined yet and must never be selected (departed
        // in-range slots stay selectable; the cluster's healthy remap
        // redirects them deterministically, exactly like crashed targets).
        let live_width = view.num_servers().min(self.num_servers);
        let q64: Vec<f64> = q[..live_width]
            .iter()
            .map(|&v| f64::from(v) + self.rng.gen_range(-dither..=dither))
            .collect();
        let guide_p = self.config.guide.value(self.stats.decisions - 1);
        let action = if self.learning && self.rng.gen::<f64>() < guide_p {
            // Behavior-policy guidance (Algorithm 1's offline experience
            // collection): consolidate like first-fit, but choose uniformly
            // among the feasible awake servers — a learned policy has no
            // canonical server ordering, and spreading keeps the awake set
            // interchangeable.
            self.policy.select(&q64, &mut self.rng); // advance the schedule
            self.guided_action(job, view)
        } else {
            self.policy.select(&q64, &mut self.rng)
        };

        if self.learning {
            self.pending = Some(Pending {
                state,
                action,
                time_s: view.totals().time_s,
                totals: *view.totals(),
            });
        }
        ServerId(action)
    }

    fn on_run_begin(&mut self) {
        // Each run restarts the clock at zero; a pending transition
        // anchored to the previous run's clock would close against a
        // nonsensical sojourn. Normally already dropped by `on_run_end`,
        // but the start hook holds even across aborted runs.
        self.pending = None;
    }

    fn on_run_end(&mut self, _view: &ClusterView<'_>) {
        // The final transition has no successor epoch; drop it.
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdrl_sim::cluster::{Cluster, RunLimit};
    use hierdrl_sim::config::ClusterConfig;
    use hierdrl_sim::job::JobId;
    use hierdrl_sim::policies::SleepImmediatelyPower;
    use hierdrl_sim::resources::ResourceVec;
    use hierdrl_sim::time::SimTime;

    fn small_config() -> DrlAllocatorConfig {
        DrlAllocatorConfig {
            warmup_decisions: 10,
            train_interval: 2,
            minibatch: 8,
            ae_pretrain_samples: 40,
            ae_epochs: 3,
            replay_capacity: 500,
            ..Default::default()
        }
    }

    fn jobs(n: u64, spacing: f64) -> Vec<Job> {
        (0..n)
            .map(|i| {
                Job::new(
                    JobId(i),
                    SimTime::from_secs(i as f64 * spacing),
                    120.0,
                    ResourceVec::cpu_mem_disk(0.2, 0.1, 0.05),
                )
            })
            .collect()
    }

    #[test]
    fn runs_end_to_end_and_learns() {
        let mut alloc = DrlAllocator::new(6, 3, small_config());
        let mut cluster = Cluster::new(ClusterConfig::paper(6), jobs(300, 20.0)).unwrap();
        let out = cluster.run(
            &mut alloc,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        );
        assert_eq!(out.totals.jobs_completed, 300);
        assert_eq!(alloc.stats().decisions, 300);
        assert!(alloc.stats().train_steps > 0, "no training happened");
        assert!(alloc.stats().autoencoder_trained, "AE never pre-trained");
        assert!(alloc.stats().loss_ema.is_finite());
    }

    #[test]
    fn actions_are_always_valid_servers() {
        // 5 servers with K = 2 means 6 network outputs; the padding action
        // must never be selected.
        let mut alloc = DrlAllocator::new(5, 3, small_config());
        let mut cluster = Cluster::new(ClusterConfig::paper(5), jobs(200, 15.0)).unwrap();
        cluster.run(
            &mut alloc,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        );
        // Every arrival was dispatched somewhere legal (enqueue asserts in
        // the cluster would have panicked otherwise) and all jobs finished.
        assert_eq!(cluster.completed_jobs().len(), 200);
    }

    #[test]
    fn elastic_fleet_actions_stay_within_the_live_width() {
        // Allocator declared for max_servers = 6 drives a fleet that
        // starts at 3, loses server 2, and grows by two joins. Selecting a
        // slot beyond the current width would trip the cluster's placement
        // assert, so a clean run is the proof of masking.
        use hierdrl_sim::events::{FleetOp, ServerSpec};
        let mut alloc = DrlAllocator::new(6, 3, small_config());
        let mut config = ClusterConfig::paper(3);
        config.max_servers = Some(6);
        let mut cluster = Cluster::new(config, jobs(300, 12.0)).unwrap();
        cluster.schedule_fleet_op(SimTime::from_secs(300.0), FleetOp::Leave(ServerId(2)));
        cluster.schedule_fleet_op(
            SimTime::from_secs(900.0),
            FleetOp::Join(ServerSpec::unit(3, true)),
        );
        cluster.schedule_fleet_op(
            SimTime::from_secs(1200.0),
            FleetOp::Join(ServerSpec::unit(3, true)),
        );
        let out = cluster.run(
            &mut alloc,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        );
        assert_eq!(
            out.totals.jobs_completed, 300,
            "no job lost across membership changes"
        );
        assert_eq!(cluster.num_live(), 4); // 3 - 1 left + rejoin + append
                                           // Jobs drained by the leave re-enter through the allocator.
        assert_eq!(alloc.stats().decisions, 300 + out.totals.jobs_requeued);
    }

    #[test]
    fn frozen_allocator_does_not_train() {
        let mut alloc = DrlAllocator::new(4, 3, small_config());
        alloc.set_learning(false);
        let mut cluster = Cluster::new(ClusterConfig::paper(4), jobs(100, 10.0)).unwrap();
        cluster.run(
            &mut alloc,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        );
        assert_eq!(alloc.stats().train_steps, 0);
    }

    #[test]
    fn replay_respects_capacity() {
        let mut config = small_config();
        config.replay_capacity = 32;
        let mut alloc = DrlAllocator::new(4, 3, config);
        let mut cluster = Cluster::new(ClusterConfig::paper(4), jobs(200, 10.0)).unwrap();
        cluster.run(
            &mut alloc,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        );
        assert!(alloc.replay.len() <= 32);
    }

    #[test]
    #[should_panic(expected = "minibatch must be positive")]
    fn zero_minibatch_rejected() {
        let mut config = small_config();
        config.minibatch = 0;
        let _ = DrlAllocator::new(4, 3, config);
    }

    #[test]
    fn target_cache_is_bitwise_invisible_to_learning() {
        // Same seed, same jobs, with and without the per-era target cache:
        // the learning trajectory (network weights, optimizer state,
        // statistics, cluster outcome) must be bitwise identical — the
        // cache only skips recomputing values the frozen target net would
        // reproduce exactly. target_sync is small so several eras (and
        // therefore both invalidation and reuse) occur within the run.
        let mut config = small_config();
        config.target_sync = 20;
        let run = |cached: bool| {
            let mut alloc = DrlAllocator::new(5, 3, config.clone());
            alloc.set_target_cache(cached);
            let mut cluster = Cluster::new(ClusterConfig::paper(5), jobs(400, 9.0)).unwrap();
            let out = cluster.run(
                &mut alloc,
                &mut SleepImmediatelyPower,
                RunLimit::unbounded(),
            );
            (out, alloc)
        };
        let (out_cached, alloc_cached) = run(true);
        let (out_ref, alloc_ref) = run(false);
        assert!(
            alloc_cached.stats().train_steps > 2 * config.target_sync,
            "run too short to cross target-net eras"
        );
        assert_eq!(out_cached.totals, out_ref.totals);
        assert_eq!(alloc_cached.stats(), alloc_ref.stats());
        let snap = |a: &DrlAllocator| serde_json::to_string(&a.snapshot()).unwrap();
        assert_eq!(
            snap(&alloc_cached),
            snap(&alloc_ref),
            "cached-target training diverged from the reference sweeps"
        );
    }

    #[test]
    fn cached_targets_match_fresh_recomputation() {
        // The cache invariant: every entry stamped with the current era
        // equals a fresh evaluation through the current target net.
        let mut config = small_config();
        config.target_sync = 25;
        let mut alloc = DrlAllocator::new(5, 3, config);
        let mut cluster = Cluster::new(ClusterConfig::paper(5), jobs(300, 10.0)).unwrap();
        cluster.run(
            &mut alloc,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        );
        let era = alloc.target_era;
        let mut checked = 0usize;
        for t in alloc.replay.iter() {
            let Some(c) = t.cache.get() else { continue };
            assert!(c.era <= era, "cache stamped with a future era");
            if c.era != era {
                continue;
            }
            let q = alloc.target_net.q_values(&t.next_state);
            assert_eq!(c.max_next, GroupedQNetwork::max_q_of(&q, 5));
            let prev = alloc.target_net.q_action_batch(&[(&t.state, t.action)])[0];
            assert_eq!(c.prev, prev);
            checked += 1;
        }
        assert!(checked > 0, "no current-era cache entries to verify");
    }
}
