//! Global-tier state construction (Section V-A).
//!
//! The DRL state at job `j`'s arrival is the union of the cluster state and
//! the job state: `s^{t_j} = [g_1, ..., g_K, s_j]`, where `g_k` collects
//! the per-resource utilization of every server in group `G_k` and `s_j`
//! holds the job's resource demands and (estimated) duration.

use hierdrl_neural::matrix::Matrix;
use hierdrl_sim::cluster::ClusterView;
use hierdrl_sim::job::Job;
use hierdrl_sim::power::MachineState;
use serde::{Deserialize, Serialize};

/// Configuration of the state encoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateEncoderConfig {
    /// Number of server groups `K` (the paper varies 2–4).
    pub num_groups: usize,
    /// Append a per-server availability feature (1 on, 0 asleep, fractional
    /// in transition). The paper's state carries only utilizations; this
    /// enrichment lets the agent see wake-up penalties directly and is
    /// ablated in `ablation_dqn`.
    pub include_power_state: bool,
    /// Append a per-server queued-jobs feature,
    /// `ln(1 + queue) / ln(1 + queue_scale)` clamped to `[0, 1]`.
    /// Utilization alone cannot distinguish a busy server from a busy
    /// server with a deep backlog; log scaling keeps the feature sensitive
    /// at both shallow and deep queues. Also ablated in `ablation_dqn`.
    pub include_queue_len: bool,
    /// Append a per-server normalized-capacity feature: the server's mean
    /// per-dimension capacity divided by the largest server's, so the
    /// feature is `1.0` for the biggest machine, fractional for littler
    /// ones, and `0.0` only on padding slots. Utilizations are *relative*
    /// (a full little server and a full big server both read 1.0), so
    /// without this feature heterogeneous fleets are indistinguishable
    /// from homogeneous ones. On homogeneous clusters every real slot
    /// encodes `1.0`. Ablated in `ablation_dqn` like the other
    /// enrichments.
    pub include_capacity: bool,
    /// Queue depth at which the feature saturates. Must be positive: a
    /// zero or negative scale would make the queue feature `NaN`/`inf`,
    /// which the `[0, 1]` clamp silently swallows.
    pub queue_scale: f64,
    /// Duration normalization constant, seconds (the paper's jobs are
    /// clipped at 2 h = 7200 s).
    pub duration_scale: f64,
}

impl Default for StateEncoderConfig {
    fn default() -> Self {
        Self {
            num_groups: 2,
            include_power_state: true,
            include_queue_len: true,
            include_capacity: true,
            queue_scale: 50.0,
            duration_scale: 7200.0,
        }
    }
}

/// The encoded global state: `K` per-group feature vectors plus the job
/// feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalState {
    /// Per-group feature vectors, each `group_width` long.
    pub groups: Vec<Vec<f32>>,
    /// Job features: demands then normalized duration.
    pub job: Vec<f32>,
}

impl GlobalState {
    /// Group `k` as a `1 x group_width` matrix.
    pub fn group_matrix(&self, k: usize) -> Matrix {
        Matrix::row_vector(&self.groups[k])
    }

    /// Job features as a `1 x job_width` matrix.
    pub fn job_matrix(&self) -> Matrix {
        Matrix::row_vector(&self.job)
    }
}

/// Encodes [`ClusterView`]s and [`Job`]s into [`GlobalState`]s with a fixed
/// group layout.
///
/// Servers are split into `K` equal groups of `ceil(M / K)` slots; when `M`
/// is not divisible by `K`, trailing slots of the last group are zero-padded
/// and the corresponding actions masked out at selection time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEncoder {
    num_servers: usize,
    resource_dims: usize,
    config: StateEncoderConfig,
    group_size: usize,
}

impl StateEncoder {
    /// Creates an encoder for a cluster of `num_servers` servers with
    /// `resource_dims` resources.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `num_groups > num_servers`.
    pub fn new(num_servers: usize, resource_dims: usize, config: StateEncoderConfig) -> Self {
        assert!(num_servers > 0, "need at least one server");
        assert!(resource_dims > 0, "need at least one resource dimension");
        assert!(config.num_groups > 0, "need at least one group");
        assert!(
            config.num_groups <= num_servers,
            "more groups ({}) than servers ({})",
            config.num_groups,
            num_servers
        );
        assert!(
            config.duration_scale > 0.0,
            "duration_scale must be positive"
        );
        assert!(
            config.queue_scale.is_finite() && config.queue_scale > 0.0,
            "queue_scale must be positive (a non-positive scale makes the \
             queue feature NaN, which the [0, 1] clamp silently hides)"
        );
        let group_size = num_servers.div_ceil(config.num_groups);
        Self {
            num_servers,
            resource_dims,
            config,
            group_size,
        }
    }

    /// Number of servers `M`.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of groups `K`.
    pub fn num_groups(&self) -> usize {
        self.config.num_groups
    }

    /// Servers (slots) per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Features per server: D resources, plus the optional availability,
    /// queue-depth, and normalized-capacity features.
    pub fn features_per_server(&self) -> usize {
        self.resource_dims
            + usize::from(self.config.include_power_state)
            + usize::from(self.config.include_queue_len)
            + usize::from(self.config.include_capacity)
    }

    /// Width of one group's feature vector.
    pub fn group_width(&self) -> usize {
        self.group_size * self.features_per_server()
    }

    /// Width of the job feature vector (demands + duration).
    pub fn job_width(&self) -> usize {
        self.resource_dims + 1
    }

    /// The group containing server `m`.
    pub fn group_of(&self, m: usize) -> usize {
        m / self.group_size
    }

    /// The slot of server `m` within its group.
    pub fn slot_of(&self, m: usize) -> usize {
        m % self.group_size
    }

    /// The global server index for `(group, slot)`, or `None` for a padding
    /// slot.
    pub fn server_at(&self, group: usize, slot: usize) -> Option<usize> {
        let m = group * self.group_size + slot;
        (m < self.num_servers).then_some(m)
    }

    /// Availability feature for a machine state.
    fn availability(state: MachineState) -> f32 {
        match state {
            MachineState::On => 1.0,
            MachineState::WakingUp { .. } => 0.5,
            MachineState::GoingToSleep { .. } => 0.25,
            MachineState::Sleeping => 0.0,
        }
    }

    /// Per-server capacity features, normalized by the fleet's largest
    /// server so the biggest machine reads `1.0` (all servers on a
    /// homogeneous cluster). The feature is the mean over resource
    /// dimensions of `capacity_d / max_capacity_d`. Returns `None` on
    /// homogeneous clusters — every real slot is `1.0` — so the per-epoch
    /// hot path (encode runs once per dispatch decision) skips the fleet
    /// scan and its allocations unless capacities actually vary.
    fn capacity_features(view: &ClusterView<'_>) -> Option<Vec<f32>> {
        view.config().server_capacities.as_ref()?;
        let dims = view.servers()[0].capacity().dims();
        let mut max_cap = vec![0.0f64; dims];
        for s in view.servers().iter().filter(|s| s.is_live()) {
            for (d, m) in max_cap.iter_mut().enumerate() {
                *m = m.max(s.capacity().get(d));
            }
        }
        Some(
            view.servers()
                .iter()
                .map(|s| {
                    let mean: f64 = (0..dims)
                        .map(|d| s.capacity().get(d) / max_cap[d])
                        .sum::<f64>()
                        / dims as f64;
                    mean as f32
                })
                .collect(),
        )
    }

    /// Encodes the cluster + job state at a decision epoch.
    ///
    /// Elastic fleets: a view may carry *fewer* slots than the encoder was
    /// declared with (`max_servers`). Slots beyond the view — servers not
    /// yet joined — and departed slots are encoded all-zero, exactly like
    /// group padding, so a fixed-width network sees a stable layout while
    /// the fleet grows and shrinks.
    ///
    /// # Panics
    ///
    /// Panics if the view has more servers than the encoder was declared
    /// with, or the job's demand dimensionality disagrees.
    pub fn encode(&self, job: &Job, view: &ClusterView<'_>) -> GlobalState {
        assert!(
            view.num_servers() <= self.num_servers,
            "view has {} servers, encoder expects at most {}",
            view.num_servers(),
            self.num_servers
        );
        assert_eq!(
            job.demand.dims(),
            self.resource_dims,
            "job has {} resource dims, encoder expects {}",
            job.demand.dims(),
            self.resource_dims
        );
        let f = self.features_per_server();
        let capacities = if self.config.include_capacity {
            Self::capacity_features(view)
        } else {
            None
        };
        let mut groups = Vec::with_capacity(self.config.num_groups);
        for k in 0..self.config.num_groups {
            let mut g = vec![0.0f32; self.group_width()];
            for slot in 0..self.group_size {
                if let Some(m) = self.server_at(k, slot) {
                    if m >= view.num_servers() {
                        continue; // not-yet-joined slot: stays zero
                    }
                    let server = &view.servers()[m];
                    if !server.is_live() {
                        continue; // departed slot: masked like padding
                    }
                    let util = server.utilization();
                    let base = slot * f;
                    for p in 0..self.resource_dims {
                        g[base + p] = util.get(p) as f32;
                    }
                    let mut extra = self.resource_dims;
                    if self.config.include_power_state {
                        g[base + extra] = Self::availability(server.state());
                        extra += 1;
                    }
                    if self.config.include_queue_len {
                        let q = (1.0 + server.queue_len() as f64).ln()
                            / (1.0 + self.config.queue_scale).ln();
                        g[base + extra] = q.min(1.0) as f32;
                        extra += 1;
                    }
                    if self.config.include_capacity {
                        // `None` = homogeneous fleet: every real slot is 1.
                        g[base + extra] = capacities.as_ref().map_or(1.0, |c| c[m]);
                    }
                }
            }
            groups.push(g);
        }
        let mut job_vec = Vec::with_capacity(self.job_width());
        for p in 0..self.resource_dims {
            job_vec.push(job.demand.get(p) as f32);
        }
        job_vec.push((job.duration / self.config.duration_scale).min(1.0) as f32);
        GlobalState {
            groups,
            job: job_vec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdrl_sim::cluster::{Allocator, Cluster, RunLimit};
    use hierdrl_sim::config::ClusterConfig;
    use hierdrl_sim::job::{JobId, ServerId};
    use hierdrl_sim::policies::AlwaysOnPower;
    use hierdrl_sim::resources::ResourceVec;
    use hierdrl_sim::time::SimTime;

    fn encoder(m: usize, k: usize) -> StateEncoder {
        StateEncoder::new(
            m,
            3,
            StateEncoderConfig {
                num_groups: k,
                ..Default::default()
            },
        )
    }

    #[test]
    fn layout_for_divisible_cluster() {
        let e = encoder(30, 2);
        assert_eq!(e.group_size(), 15);
        assert_eq!(e.features_per_server(), 6);
        assert_eq!(e.group_width(), 90);
        assert_eq!(e.job_width(), 4);
        assert_eq!(e.group_of(14), 0);
        assert_eq!(e.group_of(15), 1);
        assert_eq!(e.slot_of(17), 2);
        assert_eq!(e.server_at(1, 2), Some(17));
    }

    #[test]
    fn capacity_feature_widens_the_layout() {
        let config = StateEncoderConfig {
            include_capacity: false,
            ..Default::default()
        };
        let without = StateEncoder::new(30, 3, config);
        assert_eq!(without.features_per_server(), 5);
        assert_eq!(without.group_width(), 75);
    }

    #[test]
    fn layout_pads_non_divisible_cluster() {
        let e = encoder(30, 4); // group_size = 8, 4*8 = 32 slots, 2 padded
        assert_eq!(e.group_size(), 8);
        assert_eq!(e.server_at(3, 5), Some(29));
        assert_eq!(e.server_at(3, 6), None);
        assert_eq!(e.server_at(3, 7), None);
    }

    /// Captures an encoded state from inside a live simulation.
    struct Probe {
        encoder: StateEncoder,
        state: Option<GlobalState>,
    }

    impl Allocator for Probe {
        fn select(&mut self, job: &Job, view: &ClusterView<'_>) -> ServerId {
            self.state = Some(self.encoder.encode(job, view));
            ServerId(0)
        }
    }

    #[test]
    fn encode_reflects_utilization_and_job() {
        // First job lands on server 0; the second arrival observes it.
        let jobs = vec![
            Job::new(
                JobId(0),
                SimTime::from_secs(0.0),
                600.0,
                ResourceVec::cpu_mem_disk(0.5, 0.25, 0.1),
            ),
            Job::new(
                JobId(1),
                SimTime::from_secs(10.0),
                3600.0,
                ResourceVec::cpu_mem_disk(0.3, 0.2, 0.1),
            ),
        ];
        let mut cluster = Cluster::new(ClusterConfig::paper(4), jobs).unwrap();
        let mut probe = Probe {
            encoder: encoder(4, 2),
            state: None,
        };
        cluster.run(&mut probe, &mut AlwaysOnPower, RunLimit::unbounded());
        let s = probe.state.expect("probe saw the second arrival");

        // Group 0, slot 0 = server 0 running job 0.
        assert!((s.groups[0][0] - 0.5).abs() < 1e-6); // cpu
        assert!((s.groups[0][1] - 0.25).abs() < 1e-6); // mem
        assert!((s.groups[0][2] - 0.1).abs() < 1e-6); // disk
        assert!((s.groups[0][3] - 1.0).abs() < 1e-6); // availability: on
        assert_eq!(s.groups[0][4], 0.0); // empty queue
        assert_eq!(s.groups[0][5], 1.0); // capacity (homogeneous)
                                         // Server 1 idle (slot 1 starts at feature 6).
        assert_eq!(s.groups[0][6], 0.0);
        // Job features of job 1.
        assert!((s.job[0] - 0.3).abs() < 1e-6);
        assert!((s.job[3] - 0.5).abs() < 1e-6); // 3600 / 7200
    }

    /// Encodes the state observed at the first arrival of an otherwise
    /// idle cluster (utilizations zero, queues empty, everything on).
    fn idle_probe_state(config: ClusterConfig, encoder: StateEncoder) -> GlobalState {
        let jobs = vec![Job::new(
            JobId(0),
            SimTime::from_secs(1.0),
            60.0,
            ResourceVec::cpu_mem_disk(0.2, 0.1, 0.05),
        )];
        let mut cluster = Cluster::new(config, jobs).unwrap();
        let mut probe = Probe {
            encoder,
            state: None,
        };
        cluster.run(&mut probe, &mut AlwaysOnPower, RunLimit::unbounded());
        probe.state.expect("probe saw the arrival")
    }

    #[test]
    fn capacity_slots_encode_normalized_capacities_with_padding() {
        // M = 5, K = 2: group size 3, one padded slot in group 1. Server 0
        // is a 2x machine, so it normalizes to 1.0 and the little servers
        // to 0.5; the padding slot stays all-zero.
        let mut config = ClusterConfig::paper(5);
        config.server_capacities = Some(vec![
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            ResourceVec::ones(3),
            ResourceVec::ones(3),
            ResourceVec::ones(3),
            ResourceVec::ones(3),
        ]);
        let e = encoder(5, 2);
        let f = e.features_per_server();
        let cap_feature = f - 1; // resources, availability, queue, capacity
        let s = idle_probe_state(config, e.clone());
        for m in 0..5 {
            let got = s.groups[e.group_of(m)][e.slot_of(m) * f + cap_feature];
            let want = if m == 0 { 1.0 } else { 0.5 };
            assert_eq!(got, want, "server {m} capacity slot");
        }
        let padded = &s.groups[1][2 * f..3 * f];
        assert!(
            padded.iter().all(|&x| x == 0.0),
            "padding slot must stay zero, got {padded:?}"
        );
    }

    #[test]
    fn big_little_encoding_differs_from_homogeneous_only_at_capacity_slots() {
        // Same idle fleet, homogeneous vs. big/little: every feature
        // matches except the capacity slots of real servers.
        let e = encoder(4, 2);
        let f = e.features_per_server();
        let cap_feature = f - 1;
        let homo = idle_probe_state(ClusterConfig::paper(4), e.clone());
        let mut hetero_config = ClusterConfig::paper(4);
        hetero_config.server_capacities = Some(vec![
            ResourceVec::new(&[2.0, 2.0, 2.0]),
            ResourceVec::ones(3),
            ResourceVec::ones(3),
            ResourceVec::ones(3),
        ]);
        let hetero = idle_probe_state(hetero_config, e.clone());

        assert_eq!(homo.job, hetero.job);
        for g in 0..e.num_groups() {
            for slot in 0..e.group_size() {
                for feat in 0..f {
                    let a = homo.groups[g][slot * f + feat];
                    let b = hetero.groups[g][slot * f + feat];
                    if feat == cap_feature {
                        if let Some(m) = e.server_at(g, slot) {
                            assert_eq!(a, 1.0, "homogeneous capacity slot {m}");
                            let want = if m == 0 { 1.0 } else { 0.5 };
                            assert_eq!(b, want, "big/little capacity slot {m}");
                        }
                    } else {
                        assert_eq!(a, b, "group {g} slot {slot} feature {feat} must match");
                    }
                }
            }
        }
    }

    #[test]
    fn narrower_view_encodes_missing_slots_as_padding() {
        // Elastic fleets: an encoder declared for max_servers = 4 must
        // accept a 2-server view, zero-filling the not-yet-joined slots
        // exactly like group padding.
        let e = encoder(4, 2);
        let f = e.features_per_server();
        let s = idle_probe_state(ClusterConfig::paper(2), e.clone());
        // Real slots: idle, on, capacity 1.
        for m in 0..2 {
            let g = &s.groups[e.group_of(m)];
            let base = e.slot_of(m) * f;
            assert_eq!(g[base + 3], 1.0, "server {m} availability");
            assert_eq!(g[base + f - 1], 1.0, "server {m} capacity");
        }
        // Slots 2 and 3 have not joined: all-zero.
        for m in 2..4 {
            let g = &s.groups[e.group_of(m)];
            let base = e.slot_of(m) * f;
            assert!(
                g[base..base + f].iter().all(|&x| x == 0.0),
                "not-yet-joined slot {m} must stay zero"
            );
        }
    }

    #[test]
    #[should_panic(expected = "queue_scale must be positive")]
    fn non_positive_queue_scale_rejected() {
        let config = StateEncoderConfig {
            queue_scale: 0.0,
            ..Default::default()
        };
        let _ = StateEncoder::new(4, 3, config);
    }

    #[test]
    fn group_matrices_have_expected_shape() {
        let s = GlobalState {
            groups: vec![vec![0.0; 6], vec![0.0; 6]],
            job: vec![0.0; 4],
        };
        assert_eq!(s.group_matrix(1).shape(), (1, 6));
        assert_eq!(s.job_matrix().shape(), (1, 4));
    }

    #[test]
    #[should_panic(expected = "more groups")]
    fn too_many_groups_rejected() {
        let _ = encoder(2, 3);
    }
}
