//! # hierdrl-core
//!
//! The paper's contribution: a hierarchical framework for joint cloud
//! resource allocation and power management.
//!
//! - **Global tier** ([`allocator::DrlAllocator`]): a DRL agent controls
//!   the job broker. Decisions are continuous-time and event-driven (one
//!   per VM arrival; the action is the target server), value updates follow
//!   Q-learning for SMDP, and the Q function is a DNN with a shared
//!   autoencoder compressing each server group's state and weight-shared
//!   per-group Sub-Q networks ([`dqn::GroupedQNetwork`]).
//! - **Local tier** ([`dpm::RlPowerManager`]): each server independently
//!   combines an LSTM workload predictor
//!   ([`predictor::LstmIatPredictor`]) with a model-free SMDP Q-learning
//!   power manager choosing sleep timeouts.
//! - **Baselines** ([`hierarchical`]): round-robin / random / least-loaded /
//!   first-fit allocation; always-on / sleep-immediately / fixed-timeout
//!   power management — every system the paper compares against.
//! - **Runner** ([`runner`]): executes policy pairs on workload traces and
//!   extracts the metrics of Table I and Figs. 8–10.
//!
//! # Examples
//!
//! ```
//! use hierdrl_core::prelude::*;
//! use hierdrl_sim::prelude::*;
//! use hierdrl_trace::prelude::*;
//!
//! // A small cluster and a short synthetic workload.
//! let cluster = ClusterConfig::paper(4);
//! let trace = TraceGenerator::new(WorkloadConfig::google_like(1, 95_000.0))?
//!     .generate_n(200);
//!
//! // Run the round-robin baseline.
//! let result = run_experiment(
//!     &PolicyPair::round_robin_baseline(),
//!     &cluster,
//!     &trace,
//!     RunLimit::unbounded(),
//! )?;
//! assert_eq!(result.outcome.totals.jobs_completed, 200);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]

pub mod allocator;
pub mod dpm;
pub mod dqn;
pub mod hierarchical;
pub mod predictor;
pub mod reward;
pub mod runner;
pub mod state;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::allocator::{DrlAllocator, DrlAllocatorConfig, DrlSnapshot, DrlStats};
    pub use crate::dpm::{DpmSnapshot, DpmStats, RlPowerConfig, RlPowerManager};
    pub use crate::dqn::{GroupedQNetwork, QNetworkConfig, QSample};
    pub use crate::hierarchical::{AllocatorKind, PolicyPair, PowerKind};
    pub use crate::predictor::{
        EwmaPredictor, IatPredictor, LastValuePredictor, LstmIatPredictor, MovingAveragePredictor,
        PredictorConfig,
    };
    pub use crate::reward::{reward_rate_between, RewardWeights};
    pub use crate::runner::{
        aggregate_shards, concat_segments, pretrain_drl, pretrain_pair, run_experiment,
        run_policies, Experiment, ExperimentResult, FleetStats, SegmentedExperiment, ShardResult,
    };
    pub use crate::state::{GlobalState, StateEncoder, StateEncoderConfig};
}
