//! The global tier's Q-network: shared autoencoder + shared Sub-Q networks
//! (the paper's Fig. 6).
//!
//! For each group `k`, the Sub-Q network estimates Q values for allocating
//! the job to each server in `G_k`. Its input is the *raw* state of its own
//! group `g_k`, the job state `s_j`, and the autoencoder-compressed codes
//! `ḡ_{k'}` of every *other* group — the dimension difference expresses
//! that the target group's own state matters most. One parameter set is
//! shared by all `K` autoencoder applications and one by all `K` Sub-Q
//! applications; gradients from every application accumulate into the
//! shared weights (the crate's cache-stack layers make this exact).

use crate::state::{GlobalState, StateEncoder};
use hierdrl_neural::activation::Activation;
use hierdrl_neural::autoencoder::Autoencoder;
use hierdrl_neural::dense::Mlp;
use hierdrl_neural::init::Init;
use hierdrl_neural::matrix::Matrix;
use hierdrl_neural::optim::{clip_grad_norm, Adam, Optimizer, Trainable};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Hyper-parameters of the grouped Q-network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QNetworkConfig {
    /// Width of the autoencoder code (paper: 15).
    pub code_size: usize,
    /// Width of the autoencoder's hidden layer (paper: 30).
    pub ae_hidden: usize,
    /// Width of the Sub-Q hidden layer (paper: 128 ELUs).
    pub hidden: usize,
    /// Adam learning rate for Q-fitting.
    pub learning_rate: f32,
    /// Global gradient-norm clip (paper: 10).
    pub grad_clip: f32,
    /// Back-propagate Q-loss into the encoder (extension; the paper
    /// pre-trains the autoencoder offline and we default to freezing it).
    pub fine_tune_encoder: bool,
}

impl Default for QNetworkConfig {
    fn default() -> Self {
        Self {
            code_size: 15,
            ae_hidden: 30,
            hidden: 128,
            learning_rate: 1e-3,
            grad_clip: 10.0,
            fine_tune_encoder: false,
        }
    }
}

/// A training sample: fit `Q(state, action)` to `target`.
#[derive(Debug, Clone)]
pub struct QSample {
    /// Encoded global state.
    pub state: GlobalState,
    /// Global action index (server index).
    pub action: usize,
    /// Target Q value (from the SMDP update rule).
    pub target: f32,
}

/// Reusable per-step buffers for the batched inference/training hot path:
/// the stacked group rows fed to the shared encoder, the resulting codes,
/// the assembled Sub-Q input rows, and the ping-pong activation scratch.
/// Purely a memory-reuse device — every value is fully overwritten before
/// use, so results never depend on the buffers' previous contents.
#[derive(Debug, Clone, Default)]
struct QWorkspace {
    group_rows: Matrix,
    codes: Matrix,
    inputs: Matrix,
    q: Matrix,
    scratch: Matrix,
    /// Batched output gradient for the training step (scattered per-sample
    /// errors), recycled across minibatches.
    dy: Matrix,
}

/// The weight-shared, autoencoder-compressed Q-network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupedQNetwork {
    autoencoder: Autoencoder,
    sub_q: Mlp,
    adam: Adam,
    config: QNetworkConfig,
    num_groups: usize,
    group_size: usize,
    group_width: usize,
    job_width: usize,
    #[serde(skip)]
    workspace: RefCell<QWorkspace>,
}

impl GroupedQNetwork {
    /// Builds the network for the given state layout.
    pub fn new(layout: &StateEncoder, config: QNetworkConfig, rng: &mut impl Rng) -> Self {
        let group_width = layout.group_width();
        let job_width = layout.job_width();
        let num_groups = layout.num_groups();
        let input = Self::input_width_for(group_width, job_width, num_groups, config.code_size);
        let autoencoder = Autoencoder::new(
            &[group_width, config.ae_hidden, config.code_size],
            Activation::ELU,
            rng,
        );
        let sub_q = Mlp::new(
            &[input, config.hidden, layout.group_size()],
            Activation::ELU,
            Activation::Linear,
            Init::HeNormal,
            rng,
        );
        Self {
            autoencoder,
            sub_q,
            adam: Adam::new(config.learning_rate),
            config,
            num_groups,
            group_size: layout.group_size(),
            group_width,
            job_width,
            workspace: RefCell::new(QWorkspace::default()),
        }
    }

    fn input_width_for(group_width: usize, job_width: usize, k: usize, code: usize) -> usize {
        group_width + job_width + (k.saturating_sub(1)) * code
    }

    /// Width of the Sub-Q input vector.
    pub fn input_width(&self) -> usize {
        Self::input_width_for(
            self.group_width,
            self.job_width,
            self.num_groups,
            self.config.code_size,
        )
    }

    /// Total action count (`K * group_size`, including padding slots).
    pub fn num_actions(&self) -> usize {
        self.num_groups * self.group_size
    }

    /// The configuration.
    pub fn config(&self) -> &QNetworkConfig {
        &self.config
    }

    /// The shared autoencoder (e.g. for inspecting reconstruction error).
    pub fn autoencoder(&self) -> &Autoencoder {
        &self.autoencoder
    }

    /// Encodes every group state into its low-dimensional code.
    fn codes(&self, s: &GlobalState) -> Vec<Matrix> {
        (0..self.num_groups)
            .map(|k| self.autoencoder.encode(&s.group_matrix(k)))
            .collect()
    }

    /// Builds the Sub-Q input row for group `k`: `[g_k | s_j | ḡ_{k'≠k}]`.
    fn sub_q_input(&self, s: &GlobalState, k: usize, codes: &[Matrix]) -> Matrix {
        let g_k = s.group_matrix(k);
        let job = s.job_matrix();
        let mut parts: Vec<&Matrix> = vec![&g_k, &job];
        for (k2, code) in codes.iter().enumerate() {
            if k2 != k {
                parts.push(code);
            }
        }
        Matrix::hcat(&parts)
    }

    /// Stacks every group row of `states` (state-major, group-minor) into
    /// `group_rows` and runs one shared-encoder sweep into `codes`.
    fn encode_all_groups(&self, states: &[&GlobalState], ws: &mut QWorkspace) {
        let k = self.num_groups;
        ws.group_rows.resize_to(states.len() * k, self.group_width);
        for (i, s) in states.iter().enumerate() {
            for g in 0..k {
                ws.group_rows
                    .row_mut(i * k + g)
                    .copy_from_slice(&s.groups[g]);
            }
        }
        self.autoencoder
            .encode_into(&ws.group_rows, &mut ws.codes, &mut ws.scratch);
    }

    /// Writes group `g`'s Sub-Q input row `[g_g | s_j | ḡ_{g'≠g}]` for the
    /// state whose codes occupy rows `code_base..code_base + K` of `codes`.
    fn fill_sub_q_row(
        &self,
        row: &mut [f32],
        s: &GlobalState,
        g: usize,
        codes: &Matrix,
        code_base: usize,
    ) {
        let code_w = self.config.code_size;
        row[..self.group_width].copy_from_slice(&s.groups[g]);
        let mut ofs = self.group_width;
        row[ofs..ofs + self.job_width].copy_from_slice(&s.job);
        ofs += self.job_width;
        for g2 in 0..self.num_groups {
            if g2 != g {
                row[ofs..ofs + code_w].copy_from_slice(codes.row(code_base + g2));
                ofs += code_w;
            }
        }
    }

    /// Q estimates for all `K * group_size` actions (padding slots
    /// included; callers mask indices `>= M`).
    pub fn q_values(&self, s: &GlobalState) -> Vec<f32> {
        self.q_values_batch(&[s])
            .pop()
            .expect("one state in, one Q vector out")
    }

    /// Q estimates for every state in `states`, batched: one shared-encoder
    /// GEMM over all `B * K` group rows and one Sub-Q GEMM over all `B * K`
    /// input rows, instead of `B * 2K` single-row passes. Per-state results
    /// are bitwise identical to [`GroupedQNetwork::q_values_reference`]
    /// because every kernel in the neural substrate is row-independent with
    /// in-order accumulation (see the batched-equivalence test suite).
    pub fn q_values_batch(&self, states: &[&GlobalState]) -> Vec<Vec<f32>> {
        if states.is_empty() {
            return Vec::new();
        }
        let k = self.num_groups;
        let ws = &mut *self.workspace.borrow_mut();
        self.encode_all_groups(states, ws);
        ws.inputs.resize_to(states.len() * k, self.input_width());
        for (i, s) in states.iter().enumerate() {
            for g in 0..k {
                let (inputs, codes) = (&mut ws.inputs, &ws.codes);
                self.fill_sub_q_row(inputs.row_mut(i * k + g), s, g, codes, i * k);
            }
        }
        // Rows are (state, group)-major, so each state's K output rows
        // concatenate into exactly the per-group q_values layout.
        self.sub_q
            .infer_into(&ws.inputs, &mut ws.q, &mut ws.scratch);
        (0..states.len())
            .map(|i| {
                let mut out = Vec::with_capacity(self.num_actions());
                for g in 0..k {
                    out.extend_from_slice(ws.q.row(i * k + g));
                }
                out
            })
            .collect()
    }

    /// `Q(s, a)` for a batch of state/action pairs: like
    /// [`GroupedQNetwork::q_values_batch`] but evaluating only the **one**
    /// Sub-Q row containing each pair's action — the allocator's target
    /// sweep needs just the taken action's value for the previous state,
    /// so the other `K-1` rows would be wasted GEMM work. Each returned
    /// value is bitwise identical to `q_values(s)[a]` (row independence).
    ///
    /// # Panics
    ///
    /// Panics if an action index is out of range.
    pub fn q_action_batch(&self, items: &[(&GlobalState, usize)]) -> Vec<f32> {
        if items.is_empty() {
            return Vec::new();
        }
        let k = self.num_groups;
        let ws = &mut *self.workspace.borrow_mut();
        let states: Vec<&GlobalState> = items.iter().map(|(s, _)| *s).collect();
        self.encode_all_groups(&states, ws);
        ws.inputs.resize_to(items.len(), self.input_width());
        for (i, (s, action)) in items.iter().enumerate() {
            assert!(*action < self.num_actions(), "action {action} out of range");
            let g = action / self.group_size;
            let (inputs, codes) = (&mut ws.inputs, &ws.codes);
            self.fill_sub_q_row(inputs.row_mut(i), s, g, codes, i * k);
        }
        self.sub_q
            .infer_into(&ws.inputs, &mut ws.q, &mut ws.scratch);
        items
            .iter()
            .enumerate()
            .map(|(i, (_, action))| ws.q[(i, action % self.group_size)])
            .collect()
    }

    /// The retained **unbatched** reference for [`GroupedQNetwork::q_values`]:
    /// `K` single-row encoder passes and `K` single-row Sub-Q passes. Kept
    /// (test-only) so the equivalence suite can assert the batched hot path
    /// is bitwise identical; production code never calls it.
    #[doc(hidden)]
    pub fn q_values_reference(&self, s: &GlobalState) -> Vec<f32> {
        let codes = self.codes(s);
        let mut out = Vec::with_capacity(self.num_actions());
        for k in 0..self.num_groups {
            let input = self.sub_q_input(s, k, &codes);
            let q = self.sub_q.infer(&input);
            out.extend_from_slice(q.row(0));
        }
        out
    }

    /// `max_a Q(s, a)` over the first `valid_actions` entries of a Q vector
    /// (the shared-evaluation path: callers that already hold `q_values`
    /// output avoid re-running the encoder sweep).
    ///
    /// # Panics
    ///
    /// Panics if `valid_actions` is zero or exceeds the vector length.
    pub fn max_q_of(q: &[f32], valid_actions: usize) -> f32 {
        assert!(
            valid_actions > 0 && valid_actions <= q.len(),
            "valid_actions {valid_actions} out of range"
        );
        q[..valid_actions]
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// `max_a Q(s, a)` over the first `valid_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if `valid_actions` is zero or exceeds the action count.
    pub fn max_q(&self, s: &GlobalState, valid_actions: usize) -> f32 {
        assert!(
            valid_actions <= self.num_actions(),
            "valid_actions {valid_actions} out of range"
        );
        Self::max_q_of(&self.q_values(s), valid_actions)
    }

    /// Pre-trains the shared autoencoder on observed group states
    /// (rows = samples of width `group_width`), returning the final epoch's
    /// reconstruction loss.
    ///
    /// # Panics
    ///
    /// Panics if the sample width does not match the group width.
    pub fn pretrain_autoencoder(
        &mut self,
        group_states: &Matrix,
        epochs: usize,
        batch_size: usize,
        learning_rate: f32,
    ) -> f32 {
        assert_eq!(
            group_states.cols(),
            self.group_width,
            "autoencoder samples must have width {}",
            self.group_width
        );
        let mut adam = Adam::new(learning_rate);
        self.autoencoder
            .fit(group_states, epochs, batch_size, &mut adam)
    }

    /// One fitted-Q training step over a minibatch: regresses the chosen
    /// actions' outputs onto the stored targets with MSE, clips the global
    /// gradient norm, and applies Adam. Returns the mean squared error.
    ///
    /// With the (default) frozen encoder the whole minibatch runs as one
    /// shared-encoder GEMM plus one Sub-Q forward/backward, with the
    /// per-sample error scattered into the batched output gradient —
    /// bitwise identical to [`GroupedQNetwork::train_batch_reference`].
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or an action index is out of range.
    pub fn train_batch(&mut self, samples: &[QSample]) -> f32 {
        self.check_batch(samples);
        self.sub_q.zero_grad();
        self.autoencoder.zero_grad();
        let n = samples.len() as f32;
        let mut loss = 0.0f32;

        if self.config.fine_tune_encoder {
            // Per-sample path so the encoder cache stack balances exactly.
            for s in samples {
                loss += self.train_one_finetune(s, n);
            }
            let mut joint = JointParams {
                sub_q: &mut self.sub_q,
                encoder: Some(&mut self.autoencoder),
            };
            clip_grad_norm(&mut joint, self.config.grad_clip);
            self.adam.step(&mut joint);
        } else {
            // Frozen encoder: one batched forward/backward over the whole
            // minibatch, rows in sample order, entirely through recycled
            // workspace buffers (encoder codes, Sub-Q inputs and caches,
            // the scattered output gradient).
            let ws = &mut *self.workspace.borrow_mut();
            let states: Vec<&GlobalState> = samples.iter().map(|s| &s.state).collect();
            self.encode_all_groups(&states, ws);
            ws.inputs.resize_to(samples.len(), self.input_width());
            let k = self.num_groups;
            for (i, s) in samples.iter().enumerate() {
                let g = s.action / self.group_size;
                let (inputs, codes) = (&mut ws.inputs, &ws.codes);
                self.fill_sub_q_row(inputs.row_mut(i), &s.state, g, codes, i * k);
            }
            let y = self.sub_q.forward_ws(&ws.inputs);
            ws.dy.resize_to(y.rows(), y.cols());
            for (i, s) in samples.iter().enumerate() {
                let slot = s.action % self.group_size;
                let err = y[(i, slot)] - s.target;
                loss += err * err;
                ws.dy[(i, slot)] = 2.0 * err / n;
            }
            // Frozen encoder: nothing consumes the input gradient.
            self.sub_q.backward_params_only_ws(&ws.dy);
            let mut joint = JointParams {
                sub_q: &mut self.sub_q,
                encoder: None,
            };
            clip_grad_norm(&mut joint, self.config.grad_clip);
            self.adam.step(&mut joint);
        }
        loss / n
    }

    /// The retained **unbatched** reference for [`GroupedQNetwork::train_batch`]
    /// (frozen-encoder path): per-sample single-row encoder sweeps and
    /// Sub-Q forward/backward passes, in sample order. Kept (test-only) so
    /// the equivalence suite can assert the batched step leaves bitwise
    /// identical weights, optimizer state, and loss; production code never
    /// calls it. Delegates to [`GroupedQNetwork::train_batch`] when the
    /// encoder is fine-tuned (that path is per-sample already).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or an action index is out of range.
    #[doc(hidden)]
    pub fn train_batch_reference(&mut self, samples: &[QSample]) -> f32 {
        if self.config.fine_tune_encoder {
            return self.train_batch(samples);
        }
        self.check_batch(samples);
        self.sub_q.zero_grad();
        self.autoencoder.zero_grad();
        let n = samples.len() as f32;
        let mut loss = 0.0f32;
        for s in samples {
            let k = s.action / self.group_size;
            let slot = s.action % self.group_size;
            let codes = self.codes(&s.state);
            let x = self.sub_q_input(&s.state, k, &codes);
            let y = self.sub_q.forward(&x);
            let err = y[(0, slot)] - s.target;
            loss += err * err;
            let mut dy = Matrix::zeros(1, y.cols());
            dy[(0, slot)] = 2.0 * err / n;
            self.sub_q.backward_params_only(&dy);
        }
        let mut joint = JointParams {
            sub_q: &mut self.sub_q,
            encoder: None,
        };
        clip_grad_norm(&mut joint, self.config.grad_clip);
        self.adam.step(&mut joint);
        loss / n
    }

    /// Validates a training minibatch.
    fn check_batch(&self, samples: &[QSample]) {
        assert!(!samples.is_empty(), "training batch is empty");
        for s in samples {
            assert!(
                s.action < self.num_actions(),
                "action {} out of range ({})",
                s.action,
                self.num_actions()
            );
        }
    }

    /// Forward/backward for one sample with encoder fine-tuning.
    fn train_one_finetune(&mut self, s: &QSample, n: f32) -> f32 {
        let k = s.action / self.group_size;
        let slot = s.action % self.group_size;
        // Forward the encoder for every other group, caching (ascending k').
        let mut codes: Vec<(usize, Matrix)> = Vec::with_capacity(self.num_groups - 1);
        for k2 in 0..self.num_groups {
            if k2 != k {
                let code = self
                    .autoencoder
                    .encoder_mut()
                    .forward(&s.state.group_matrix(k2));
                codes.push((k2, code));
            }
        }
        let g_k = s.state.group_matrix(k);
        let job = s.state.job_matrix();
        let mut parts: Vec<&Matrix> = vec![&g_k, &job];
        for (_, c) in &codes {
            parts.push(c);
        }
        let x = Matrix::hcat(&parts);
        let y = self.sub_q.forward(&x);
        let err = y[(0, slot)] - s.target;
        let mut dy = Matrix::zeros(1, y.cols());
        dy[(0, slot)] = 2.0 * err / n;
        let dx = self.sub_q.backward(&dy);
        // Route code gradients back through the encoder in reverse order of
        // the forward calls (cache-stack discipline).
        let base = self.group_width + self.job_width;
        let code_w = self.config.code_size;
        for (i, _) in codes.iter().enumerate().rev() {
            let grad = dx.slice_cols(base + i * code_w, code_w);
            let _ = self.autoencoder.encoder_mut().backward(&grad);
        }
        err * err
    }
}

/// Joint parameter view for the optimizer: Sub-Q weights, plus the encoder
/// when fine-tuning. Visit order is stable for the lifetime of the network.
struct JointParams<'a> {
    sub_q: &'a mut Mlp,
    encoder: Option<&'a mut Autoencoder>,
}

impl Trainable for JointParams<'_> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.sub_q.visit_params(f);
        if let Some(enc) = self.encoder.as_mut() {
            enc.visit_params(f);
        }
    }

    fn zero_grad(&mut self) {
        self.sub_q.zero_grad();
        if let Some(enc) = self.encoder.as_mut() {
            enc.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateEncoderConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout(m: usize, k: usize) -> StateEncoder {
        StateEncoder::new(
            m,
            3,
            StateEncoderConfig {
                num_groups: k,
                ..Default::default()
            },
        )
    }

    fn random_state(layout: &StateEncoder, rng: &mut StdRng) -> GlobalState {
        use rand::Rng;
        GlobalState {
            groups: (0..layout.num_groups())
                .map(|_| {
                    (0..layout.group_width())
                        .map(|_| rng.gen::<f32>())
                        .collect()
                })
                .collect(),
            job: (0..layout.job_width()).map(|_| rng.gen::<f32>()).collect(),
        }
    }

    #[test]
    fn dimensions_match_paper_setup() {
        // M = 30, K = 2, D = 3 + availability + queue + capacity:
        // group width 90 (the paper's raw state is the 45-wide
        // utilizations-only layout; the enrichments widen it).
        let mut rng = StdRng::seed_from_u64(0);
        let lay = layout(30, 2);
        let net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        assert_eq!(net.num_actions(), 30);
        assert_eq!(net.input_width(), 90 + 4 + 15);
        let s = random_state(&lay, &mut rng);
        assert_eq!(net.q_values(&s).len(), 30);
    }

    #[test]
    fn padded_groups_produce_extra_masked_actions() {
        let mut rng = StdRng::seed_from_u64(1);
        let lay = layout(30, 4); // group size 8 -> 32 actions
        let net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        assert_eq!(net.num_actions(), 32);
        let s = random_state(&lay, &mut rng);
        assert_eq!(net.q_values(&s).len(), 32);
        // max over valid prefix only
        let _ = net.max_q(&s, 30);
    }

    #[test]
    fn training_fits_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let lay = layout(8, 2);
        let mut net = GroupedQNetwork::new(
            &lay,
            QNetworkConfig {
                learning_rate: 3e-3,
                ..Default::default()
            },
            &mut rng,
        );
        // A handful of fixed states with fixed targets: loss must fall.
        let samples: Vec<QSample> = (0..8)
            .map(|i| QSample {
                state: random_state(&lay, &mut rng),
                action: i % 8,
                target: (i as f32 - 4.0) * 0.5,
            })
            .collect();
        let first = net.train_batch(&samples);
        let mut last = first;
        for _ in 0..300 {
            last = net.train_batch(&samples);
        }
        assert!(last < first * 0.1, "loss {first} -> {last} did not fall");
    }

    #[test]
    fn fine_tune_path_also_fits() {
        let mut rng = StdRng::seed_from_u64(3);
        let lay = layout(6, 3);
        let mut net = GroupedQNetwork::new(
            &lay,
            QNetworkConfig {
                learning_rate: 3e-3,
                fine_tune_encoder: true,
                ..Default::default()
            },
            &mut rng,
        );
        let samples: Vec<QSample> = (0..6)
            .map(|i| QSample {
                state: random_state(&lay, &mut rng),
                action: i,
                target: 1.0,
            })
            .collect();
        let first = net.train_batch(&samples);
        let mut last = first;
        for _ in 0..300 {
            last = net.train_batch(&samples);
        }
        assert!(last < first * 0.2, "loss {first} -> {last} did not fall");
    }

    #[test]
    fn autoencoder_pretraining_reduces_reconstruction_error() {
        let mut rng = StdRng::seed_from_u64(4);
        let lay = layout(8, 2);
        let mut net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        // Structured group states (low-rank): compressible.
        let mut data = Matrix::zeros(64, lay.group_width());
        for r in 0..64 {
            use rand::Rng;
            let a: f32 = rng.gen();
            for c in 0..lay.group_width() {
                data[(r, c)] = a * (c % 4) as f32 / 4.0;
            }
        }
        let before = net.autoencoder().reconstruction_error(&data);
        net.pretrain_autoencoder(&data, 100, 16, 3e-3);
        let after = net.autoencoder().reconstruction_error(&data);
        assert!(after < before * 0.5, "recon {before} -> {after}");
    }

    #[test]
    fn q_values_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let lay = layout(10, 2);
        let net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        let s = random_state(&lay, &mut rng);
        assert_eq!(net.q_values(&s), net.q_values(&s));
    }

    #[test]
    #[should_panic(expected = "training batch is empty")]
    fn empty_batch_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let lay = layout(4, 2);
        let mut net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
        let _ = net.train_batch(&[]);
    }
}
