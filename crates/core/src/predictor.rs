//! The local tier's workload predictor (Section VI-A).
//!
//! Each server runs an LSTM that predicts the next job inter-arrival time
//! from the previous 35 inter-arrival times (the paper's look-back window),
//! trained online with Adam. Simpler predictors (last-value, moving
//! average, EWMA) are provided as comparison baselines for the
//! `lstm_accuracy` bench — the paper motivates the LSTM by the failure of
//! linear combinations of previous inter-arrival times.

use hierdrl_neural::loss::Loss;
use hierdrl_neural::lstm::LstmNetwork;
use hierdrl_neural::matrix::Matrix;
use hierdrl_neural::optim::{Adam, Optimizer, Trainable};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A predictor of job inter-arrival times fed one observation at a time.
pub trait IatPredictor {
    /// Records an observed inter-arrival time (seconds). Implementations
    /// that learn from observations must reject values that carry no
    /// inter-arrival information (NaN, infinities, non-positive gaps)
    /// instead of folding them into their state.
    fn observe(&mut self, iat: f64);

    /// Predicts the next inter-arrival time, or `None` before enough
    /// history has accumulated.
    fn predict(&self) -> Option<f64>;
}

/// Configuration of the LSTM workload predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Look-back window length (paper: 35).
    pub lookback: usize,
    /// LSTM hidden units (paper: 30).
    pub hidden: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Lower clamp for log-normalization, seconds.
    pub min_iat: f64,
    /// Upper clamp for log-normalization, seconds.
    pub max_iat: f64,
    /// Train online on each new observation.
    pub online_training: bool,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            lookback: 35,
            hidden: 30,
            learning_rate: 2e-3,
            min_iat: 1.0,
            max_iat: 7200.0,
            online_training: true,
        }
    }
}

/// Online LSTM predictor of inter-arrival times.
///
/// Inter-arrival times are log-normalized to `[0, 1]` (they span orders of
/// magnitude), predicted in that space, and mapped back.
#[derive(Debug)]
pub struct LstmIatPredictor {
    config: PredictorConfig,
    lstm: LstmNetwork,
    adam: Adam,
    window: VecDeque<f32>,
    observations: u64,
    rejected: u64,
    training_steps: u64,
    sq_err_sum: f64,
    err_count: u64,
    /// Memoized [`IatPredictor::predict`] output: the prediction is a pure
    /// function of the window and weights, both of which only change in
    /// `observe`, so repeated reads between observations (every power
    /// decision epoch asks) skip the 35-step LSTM sweep.
    cached_prediction: std::cell::Cell<Option<f64>>,
}

impl LstmIatPredictor {
    /// Creates a predictor with freshly initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PredictorConfig, rng: &mut impl Rng) -> Self {
        assert!(config.lookback >= 2, "lookback must be at least 2");
        assert!(config.hidden >= 1, "need at least one hidden unit");
        assert!(
            config.min_iat > 0.0 && config.min_iat < config.max_iat,
            "need 0 < min_iat < max_iat"
        );
        let lstm = LstmNetwork::new(1, 1, config.hidden, 1, rng);
        Self {
            adam: Adam::new(config.learning_rate),
            lstm,
            window: VecDeque::with_capacity(config.lookback + 1),
            observations: 0,
            rejected: 0,
            training_steps: 0,
            sq_err_sum: 0.0,
            err_count: 0,
            cached_prediction: std::cell::Cell::new(None),
            config,
        }
    }

    /// The paper's configuration (look-back 35, 30 hidden units).
    pub fn paper(rng: &mut impl Rng) -> Self {
        Self::new(PredictorConfig::default(), rng)
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Observations consumed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Observations rejected as carrying no inter-arrival information
    /// (NaN, infinite, or non-positive). A non-zero count under a correct
    /// simulator driver indicates a time-bookkeeping bug upstream — e.g.
    /// a last-arrival mark leaking across a segment boundary.
    pub fn rejected_observations(&self) -> u64 {
        self.rejected
    }

    /// Online training steps performed.
    pub fn training_steps(&self) -> u64 {
        self.training_steps
    }

    /// Enables or disables online training (weights freeze while off; the
    /// look-back window keeps tracking observations so predictions stay
    /// current).
    pub fn set_online_training(&mut self, on: bool) {
        self.config.online_training = on;
    }

    /// Running mean squared one-step prediction error in *normalized*
    /// space, or `None` if no prediction has been scored yet.
    pub fn normalized_mse(&self) -> Option<f64> {
        (self.err_count > 0).then(|| self.sq_err_sum / self.err_count as f64)
    }

    fn normalize(&self, iat: f64) -> f32 {
        let c = &self.config;
        let clamped = iat.clamp(c.min_iat, c.max_iat);
        ((clamped.ln() - c.min_iat.ln()) / (c.max_iat.ln() - c.min_iat.ln())) as f32
    }

    fn denormalize(&self, z: f32) -> f64 {
        let c = &self.config;
        let z = f64::from(z).clamp(0.0, 1.0);
        (c.min_iat.ln() + z * (c.max_iat.ln() - c.min_iat.ln())).exp()
    }

    /// The look-back window as one `T x 1` sequence matrix (rows = steps).
    fn window_seq(&self) -> Matrix {
        Matrix::from_vec(self.window.len(), 1, self.window.iter().copied().collect())
    }
}

impl IatPredictor for LstmIatPredictor {
    fn observe(&mut self, iat: f64) {
        // A NaN here would sail through `clamp` (which returns NaN for NaN
        // input) into the window and then the weights, silently poisoning
        // every later prediction; a non-positive gap is physically
        // meaningless for an inter-*arrival* process (two events at one
        // instant, or a clock that went backwards). Reject both instead of
        // normalizing them — the mirror of the state encoder's
        // `queue_scale > 0` guard.
        if !(iat.is_finite() && iat > 0.0) {
            self.rejected += 1;
            return;
        }
        self.observations += 1;
        let z = self.normalize(iat);
        // The current window predicts this observation: train on it.
        if self.window.len() == self.config.lookback && self.config.online_training {
            let seq = self.window_seq();
            let target = Matrix::row_vector(&[z]);
            self.lstm.zero_grad();
            let pred = self.lstm.forward_seq(&seq);
            let err = f64::from(pred.as_slice()[0] - z);
            self.sq_err_sum += err * err;
            self.err_count += 1;
            let dy = Loss::Mse.gradient(&pred, &target);
            self.lstm.backward_seq(&dy);
            self.adam.step(&mut self.lstm);
            self.training_steps += 1;
        }
        self.window.push_back(z);
        if self.window.len() > self.config.lookback {
            self.window.pop_front();
        }
        self.cached_prediction.set(None);
    }

    fn predict(&self) -> Option<f64> {
        if self.window.len() < self.config.lookback {
            return None;
        }
        if let Some(cached) = self.cached_prediction.get() {
            return Some(cached);
        }
        let z = self.lstm.infer_seq(&self.window_seq()).as_slice()[0];
        let prediction = self.denormalize(z);
        self.cached_prediction.set(Some(prediction));
        Some(prediction)
    }
}

/// Predicts the next inter-arrival time as the previous one.
#[derive(Debug, Clone, Default)]
pub struct LastValuePredictor {
    last: Option<f64>,
}

impl IatPredictor for LastValuePredictor {
    fn observe(&mut self, iat: f64) {
        self.last = Some(iat);
    }

    fn predict(&self) -> Option<f64> {
        self.last
    }
}

/// Predicts the mean of the last `window` observations — the "linear
/// combination of previous inter-arrival times" family the paper argues
/// against (Section VI-A).
#[derive(Debug, Clone)]
pub struct MovingAveragePredictor {
    window: usize,
    values: VecDeque<f64>,
}

impl MovingAveragePredictor {
    /// Creates a predictor averaging the last `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            values: VecDeque::with_capacity(window),
        }
    }
}

impl IatPredictor for MovingAveragePredictor {
    fn observe(&mut self, iat: f64) {
        self.values.push_back(iat);
        if self.values.len() > self.window {
            self.values.pop_front();
        }
    }

    fn predict(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }
}

/// Exponentially weighted moving average predictor.
#[derive(Debug, Clone)]
pub struct EwmaPredictor {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaPredictor {
    /// Creates a predictor with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is out of range.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }
}

impl IatPredictor for EwmaPredictor {
    fn observe(&mut self, iat: f64) {
        self.value = Some(match self.value {
            None => iat,
            Some(v) => self.alpha * iat + (1.0 - self.alpha) * v,
        });
    }

    fn predict(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> PredictorConfig {
        PredictorConfig {
            lookback: 6,
            hidden: 8,
            learning_rate: 5e-3,
            ..Default::default()
        }
    }

    #[test]
    fn no_prediction_before_window_fills() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = LstmIatPredictor::new(small_config(), &mut rng);
        for i in 0..5 {
            assert!(p.predict().is_none(), "predicted too early at {i}");
            p.observe(60.0);
        }
        p.observe(60.0);
        assert!(p.predict().is_some());
    }

    #[test]
    fn predictions_are_within_clamp_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = LstmIatPredictor::new(small_config(), &mut rng);
        for i in 0..40 {
            p.observe(if i % 2 == 0 { 10.0 } else { 500.0 });
        }
        let pred = p.predict().unwrap();
        assert!((1.0..=7200.0).contains(&pred), "prediction {pred}");
    }

    #[test]
    fn learns_a_periodic_arrival_process() {
        // Alternating 30 s / 600 s inter-arrivals: after training, the
        // prediction following a 30 s gap should be much larger than the
        // one following a 600 s gap.
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = LstmIatPredictor::new(small_config(), &mut rng);
        for i in 0..900 {
            p.observe(if i % 2 == 0 { 30.0 } else { 600.0 });
        }
        // Window now ends on an even count => last observed was 600 (i odd
        // last = 899 -> 600.0). Next should be ~30.
        let after_600 = p.predict().unwrap();
        p.observe(30.0);
        let after_30 = p.predict().unwrap();
        assert!(
            after_30 > after_600 * 2.0,
            "after_30 {after_30} vs after_600 {after_600}"
        );
    }

    #[test]
    fn online_training_reduces_error_on_stationary_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = LstmIatPredictor::new(small_config(), &mut rng);
        for _ in 0..50 {
            p.observe(120.0);
        }
        let early = p.normalized_mse().unwrap();
        for _ in 0..400 {
            p.observe(120.0);
        }
        // Error on a constant stream must collapse.
        let pred = p.predict().unwrap();
        assert!(
            (pred - 120.0).abs() < 60.0,
            "constant-stream prediction {pred} too far from 120"
        );
        assert!(p.normalized_mse().unwrap() <= early);
    }

    #[test]
    fn disabled_training_keeps_weights_fixed() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut config = small_config();
        config.online_training = false;
        let mut p = LstmIatPredictor::new(config, &mut rng);
        for _ in 0..50 {
            p.observe(100.0);
        }
        assert_eq!(p.training_steps(), 0);
        assert!(p.normalized_mse().is_none());
    }

    #[test]
    fn last_value_predictor_echoes() {
        let mut p = LastValuePredictor::default();
        assert!(p.predict().is_none());
        p.observe(42.0);
        assert_eq!(p.predict(), Some(42.0));
        p.observe(7.0);
        assert_eq!(p.predict(), Some(7.0));
    }

    #[test]
    fn moving_average_window() {
        let mut p = MovingAveragePredictor::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            p.observe(v);
        }
        assert_eq!(p.predict(), Some(3.0)); // mean of 2, 3, 4
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut p = EwmaPredictor::new(0.5);
        for _ in 0..20 {
            p.observe(10.0);
        }
        assert!((p.predict().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_and_non_positive_observations_are_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = LstmIatPredictor::new(small_config(), &mut rng);
        for _ in 0..20 {
            p.observe(120.0);
        }
        let weights_before = format!("{:?}", p.lstm);
        let (obs, steps) = (p.observations(), p.training_steps());

        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -42.0] {
            p.observe(bad);
        }
        assert_eq!(p.rejected_observations(), 5);
        assert_eq!(p.observations(), obs, "rejected values must not count");
        assert_eq!(p.training_steps(), steps, "rejected values must not train");
        assert_eq!(
            format!("{:?}", p.lstm),
            weights_before,
            "rejected values must not touch the weights"
        );
        // The prediction is still finite and in range afterwards.
        let pred = p.predict().unwrap();
        assert!(pred.is_finite() && pred >= 1.0);
    }

    #[test]
    fn training_can_be_frozen_and_resumed() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = LstmIatPredictor::new(small_config(), &mut rng);
        for _ in 0..20 {
            p.observe(100.0);
        }
        let steps = p.training_steps();
        p.set_online_training(false);
        for _ in 0..20 {
            p.observe(100.0);
        }
        assert_eq!(p.training_steps(), steps, "frozen predictor must not train");
        assert_eq!(p.observations(), 40, "window keeps tracking while frozen");
        p.set_online_training(true);
        p.observe(100.0);
        assert_eq!(p.training_steps(), steps + 1);
    }

    #[test]
    #[should_panic(expected = "lookback must be at least 2")]
    fn tiny_lookback_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut config = small_config();
        config.lookback = 1;
        let _ = LstmIatPredictor::new(config, &mut rng);
    }
}
