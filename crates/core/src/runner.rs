//! Experiment runner: executes policy pairs on traces and collects the
//! metrics the paper reports (accumulated energy/latency curves, Table I
//! summaries, trade-off points).

use crate::allocator::DrlAllocator;
use crate::hierarchical::PolicyPair;
use hierdrl_sim::cluster::{Allocator, Cluster, PowerManager, RunLimit};
use hierdrl_sim::config::ClusterConfig;
use hierdrl_sim::metrics::{LatencyStats, RunOutcome, SamplePoint};
use hierdrl_sim::policies::SleepImmediatelyPower;
use hierdrl_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// Fleet-level power behaviour summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Mean fraction of time servers spent busy.
    pub busy_fraction: f64,
    /// Mean fraction of time servers spent idle (on, no jobs).
    pub idle_fraction: f64,
    /// Mean fraction of time servers spent asleep.
    pub sleep_fraction: f64,
    /// Mean fraction of time servers spent in power transitions.
    pub transition_fraction: f64,
    /// Total sleep -> wake transitions across the fleet.
    pub total_wake_transitions: u64,
}

/// The result of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Policy name.
    pub name: String,
    /// Final totals and end time.
    pub outcome: RunOutcome,
    /// Latency distribution over completed jobs.
    pub latency: Option<LatencyStats>,
    /// Fleet power behaviour.
    pub fleet: FleetStats,
}

impl ExperimentResult {
    /// The accumulated-latency / energy curves (Figs. 8/9 series).
    pub fn samples(&self) -> &[SamplePoint] {
        &self.outcome.samples
    }

    /// Energy in kWh (Table I column 1).
    pub fn energy_kwh(&self) -> f64 {
        self.outcome.totals.energy_kwh()
    }

    /// Accumulated latency in units of 1e6 seconds (Table I column 2).
    pub fn latency_mega_s(&self) -> f64 {
        self.outcome.totals.total_latency_s / 1e6
    }

    /// Average power in watts (Table I column 3).
    pub fn average_power_w(&self) -> f64 {
        self.outcome.totals.average_power_watts()
    }

    /// Average latency per job, seconds (Fig. 10 y-axis).
    pub fn mean_latency_s(&self) -> f64 {
        self.outcome.totals.mean_latency_s()
    }

    /// Average energy per job, joules (Fig. 10 x-axis).
    pub fn energy_per_job_j(&self) -> f64 {
        self.outcome.totals.energy_per_job_joules()
    }
}

fn fleet_stats(cluster: &Cluster) -> FleetStats {
    let mut f = FleetStats::default();
    let n = cluster.servers().len() as f64;
    for s in cluster.servers() {
        let st = s.stats();
        let total = (st.busy_seconds + st.idle_seconds + st.sleep_seconds + st.transition_seconds)
            .max(1e-9);
        f.busy_fraction += st.busy_seconds / total / n;
        f.idle_fraction += st.idle_seconds / total / n;
        f.sleep_fraction += st.sleep_seconds / total / n;
        f.transition_fraction += st.transition_seconds / total / n;
        f.total_wake_transitions += st.wake_transitions;
    }
    f
}

/// A single, reusable experiment definition: one cluster configuration and
/// one workload trace, executable under any control-plane pair.
///
/// This is the entry point the experiment-orchestration layer
/// (`hierdrl-exp`) drives: a suite cell borrows its (possibly cached) trace
/// and cluster config, builds an `Experiment`, and runs whichever policies
/// the scenario names. The historical free functions
/// [`run_experiment`]/[`run_policies`] are thin wrappers around it.
///
/// # Examples
///
/// ```
/// use hierdrl_core::prelude::*;
/// use hierdrl_sim::prelude::*;
/// use hierdrl_trace::prelude::*;
///
/// let cluster = ClusterConfig::paper(4);
/// let trace = TraceGenerator::new(WorkloadConfig::google_like(1, 95_000.0))?
///     .generate_n(100);
///
/// let experiment = Experiment::new("demo", &cluster, &trace);
/// let result = experiment.run_pair(&PolicyPair::round_robin_baseline())?;
/// assert_eq!(result.outcome.totals.jobs_completed, 100);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Experiment<'a> {
    /// Display name attached to results.
    pub name: &'a str,
    /// Cluster under test.
    pub cluster: &'a ClusterConfig,
    /// Workload to replay.
    pub trace: &'a Trace,
    /// Bounds on the run.
    pub limit: RunLimit,
}

impl<'a> Experiment<'a> {
    /// An unbounded experiment over the given cluster and trace.
    pub fn new(name: &'a str, cluster: &'a ClusterConfig, trace: &'a Trace) -> Self {
        Self {
            name,
            cluster,
            trace,
            limit: RunLimit::unbounded(),
        }
    }

    /// Replaces the run limit.
    #[must_use]
    pub fn with_limit(mut self, limit: RunLimit) -> Self {
        self.limit = limit;
        self
    }

    /// Runs pre-built policy objects, leaving them trained afterwards.
    ///
    /// # Errors
    ///
    /// Returns an error if the cluster configuration or trace is invalid.
    pub fn run(
        &self,
        allocator: &mut dyn Allocator,
        power: &mut dyn PowerManager,
    ) -> Result<ExperimentResult, String> {
        let mut cluster = Cluster::new(self.cluster.clone(), self.trace.jobs().to_vec())?;
        let outcome = cluster.run(allocator, power, self.limit);
        Ok(ExperimentResult {
            name: self.name.to_string(),
            latency: LatencyStats::from_jobs(cluster.completed_jobs()),
            fleet: fleet_stats(&cluster),
            outcome,
        })
    }

    /// Builds fresh policy objects from a [`PolicyPair`] and runs them.
    ///
    /// # Errors
    ///
    /// Returns an error if the cluster configuration or trace is invalid.
    pub fn run_pair(&self, pair: &PolicyPair) -> Result<ExperimentResult, String> {
        let mut allocator = pair
            .allocator
            .build(self.cluster.num_servers, self.cluster.resource_dims);
        let mut power = pair.power.build(self.cluster.num_servers);
        Experiment {
            name: &pair.name,
            ..*self
        }
        .run(allocator.as_mut(), power.as_mut())
    }
}

/// Runs pre-built policy objects on a trace. Useful when the caller owns a
/// pre-trained learner and wants to keep it afterwards.
///
/// # Errors
///
/// Returns an error if the cluster configuration or trace is invalid.
pub fn run_policies(
    name: &str,
    cluster_config: &ClusterConfig,
    trace: &Trace,
    allocator: &mut dyn Allocator,
    power: &mut dyn PowerManager,
    limit: RunLimit,
) -> Result<ExperimentResult, String> {
    Experiment::new(name, cluster_config, trace)
        .with_limit(limit)
        .run(allocator, power)
}

/// Runs a [`PolicyPair`] on a trace, building fresh policy objects.
///
/// # Errors
///
/// Returns an error if the cluster configuration or trace is invalid.
pub fn run_experiment(
    pair: &PolicyPair,
    cluster_config: &ClusterConfig,
    trace: &Trace,
    limit: RunLimit,
) -> Result<ExperimentResult, String> {
    Experiment::new(&pair.name, cluster_config, trace)
        .with_limit(limit)
        .run_pair(pair)
}

/// Offline pre-training of a DRL allocator (Section VII-A): epsilon-greedy
/// rollouts over several workload segments, filling the experience memory,
/// pre-training the autoencoder, and fitting the DNN. The paper uses
/// workload traces for five different clusters.
///
/// Rollouts pair the allocator with the ad-hoc sleep-immediately local
/// behaviour so the learned Q function reflects wake penalties.
///
/// # Errors
///
/// Returns an error if any rollout fails to construct.
pub fn pretrain_drl(
    allocator: &mut DrlAllocator,
    cluster_config: &ClusterConfig,
    segments: &[Trace],
) -> Result<(), String> {
    pretrain_pair(
        allocator,
        &mut SleepImmediatelyPower,
        cluster_config,
        segments,
    )
}

/// Offline pre-training of an (allocator, power manager) pair over several
/// workload segments. Used to co-train the hierarchical framework's two
/// tiers before evaluation, so the global tier's learned values reflect the
/// local tier's timeout behaviour and vice versa.
///
/// # Errors
///
/// Returns an error if any rollout fails to construct.
pub fn pretrain_pair(
    allocator: &mut dyn Allocator,
    power: &mut dyn PowerManager,
    cluster_config: &ClusterConfig,
    segments: &[Trace],
) -> Result<(), String> {
    for segment in segments {
        let mut cluster = Cluster::new(cluster_config.clone(), segment.jobs().to_vec())?;
        cluster.run(allocator, power, RunLimit::unbounded());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::DrlAllocatorConfig;
    use hierdrl_trace::generator::{TraceGenerator, WorkloadConfig};

    fn small_trace(seed: u64, n: usize) -> Trace {
        let config = WorkloadConfig::google_like(seed, 95_000.0);
        TraceGenerator::new(config).unwrap().generate_n(n)
    }

    #[test]
    fn round_robin_experiment_completes() {
        let trace = small_trace(1, 300);
        let result = run_experiment(
            &PolicyPair::round_robin_baseline(),
            &ClusterConfig::paper(5),
            &trace,
            RunLimit::unbounded(),
        )
        .unwrap();
        assert_eq!(result.outcome.totals.jobs_completed, 300);
        assert!(result.energy_kwh() > 0.0);
        assert!(result.latency.is_some());
        // Always-on: no sleeping at all.
        assert_eq!(result.fleet.sleep_fraction, 0.0);
    }

    #[test]
    fn fleet_fractions_sum_to_one() {
        let trace = small_trace(2, 200);
        let pair = PolicyPair {
            name: "ff+timeout".into(),
            allocator: crate::hierarchical::AllocatorKind::FirstFit,
            power: crate::hierarchical::PowerKind::FixedTimeout(60.0),
        };
        let result = run_experiment(
            &pair,
            &ClusterConfig::paper(5),
            &trace,
            RunLimit::unbounded(),
        )
        .unwrap();
        let f = result.fleet;
        let sum = f.busy_fraction + f.idle_fraction + f.sleep_fraction + f.transition_fraction;
        assert!((sum - 1.0).abs() < 1e-6, "fractions sum to {sum}");
        assert!(f.sleep_fraction > 0.0, "consolidation should sleep servers");
    }

    #[test]
    fn pretraining_then_evaluation_reuses_learner() {
        let config = ClusterConfig::paper(4);
        let drl_config = DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 100,
            ae_epochs: 2,
            ..Default::default()
        };
        let mut allocator = DrlAllocator::new(4, 3, drl_config);

        let segments: Vec<Trace> = (0..2).map(|s| small_trace(10 + s, 150)).collect();
        pretrain_drl(&mut allocator, &config, &segments).unwrap();
        let trained_decisions = allocator.stats().decisions;
        assert_eq!(trained_decisions, 300);

        let eval = small_trace(99, 100);
        let result = run_policies(
            "drl-eval",
            &config,
            &eval,
            &mut allocator,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        )
        .unwrap();
        assert_eq!(result.outcome.totals.jobs_completed, 100);
        assert_eq!(allocator.stats().decisions, trained_decisions + 100);
    }

    #[test]
    fn table_one_columns_are_consistent() {
        let trace = small_trace(3, 200);
        let result = run_experiment(
            &PolicyPair::round_robin_baseline(),
            &ClusterConfig::paper(5),
            &trace,
            RunLimit::unbounded(),
        )
        .unwrap();
        // energy (kWh) == avg power (W) * span (h) / 1000
        let hours = result.outcome.end_time.as_hours();
        let expect_kwh = result.average_power_w() * hours / 1000.0;
        assert!((result.energy_kwh() - expect_kwh).abs() < 1e-9);
    }
}
