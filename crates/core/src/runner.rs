//! Experiment runner: executes policy pairs on traces and collects the
//! metrics the paper reports (accumulated energy/latency curves, Table I
//! summaries, trade-off points).

use crate::allocator::DrlAllocator;
use crate::hierarchical::PolicyPair;
use hierdrl_sim::cluster::{Allocator, ArrivalSource, Cluster, PowerManager, RunLimit};
use hierdrl_sim::config::ClusterConfig;
use hierdrl_sim::events::FleetOp;
use hierdrl_sim::metrics::{LatencyStats, RunOutcome, SamplePoint};
use hierdrl_sim::policies::SleepImmediatelyPower;
use hierdrl_sim::time::SimTime;
use hierdrl_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// Fleet-level power behaviour summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Mean fraction of time servers spent busy.
    pub busy_fraction: f64,
    /// Mean fraction of time servers spent idle (on, no jobs).
    pub idle_fraction: f64,
    /// Mean fraction of time servers spent asleep.
    pub sleep_fraction: f64,
    /// Mean fraction of time servers spent in power transitions.
    pub transition_fraction: f64,
    /// Total sleep -> wake transitions across the fleet.
    pub total_wake_transitions: u64,
}

/// The result of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Policy name.
    pub name: String,
    /// Final totals and end time.
    pub outcome: RunOutcome,
    /// Latency distribution over completed jobs.
    pub latency: Option<LatencyStats>,
    /// Fleet power behaviour.
    pub fleet: FleetStats,
}

impl ExperimentResult {
    /// The accumulated-latency / energy curves (Figs. 8/9 series).
    pub fn samples(&self) -> &[SamplePoint] {
        &self.outcome.samples
    }

    /// Energy in kWh (Table I column 1).
    pub fn energy_kwh(&self) -> f64 {
        self.outcome.totals.energy_kwh()
    }

    /// Accumulated latency in units of 1e6 seconds (Table I column 2).
    pub fn latency_mega_s(&self) -> f64 {
        self.outcome.totals.total_latency_s / 1e6
    }

    /// Average power in watts (Table I column 3).
    pub fn average_power_w(&self) -> f64 {
        self.outcome.totals.average_power_watts()
    }

    /// Average latency per job, seconds (Fig. 10 y-axis).
    pub fn mean_latency_s(&self) -> f64 {
        self.outcome.totals.mean_latency_s()
    }

    /// Average energy per job, joules (Fig. 10 x-axis).
    pub fn energy_per_job_j(&self) -> f64 {
        self.outcome.totals.energy_per_job_joules()
    }
}

fn fleet_stats(cluster: &Cluster) -> FleetStats {
    let mut f = FleetStats::default();
    let n = cluster.servers().len() as f64;
    for s in cluster.servers() {
        let st = s.stats();
        let total = (st.busy_seconds + st.idle_seconds + st.sleep_seconds + st.transition_seconds)
            .max(1e-9);
        f.busy_fraction += st.busy_seconds / total / n;
        f.idle_fraction += st.idle_seconds / total / n;
        f.sleep_fraction += st.sleep_seconds / total / n;
        f.transition_fraction += st.transition_seconds / total / n;
        f.total_wake_transitions += st.wake_transitions;
    }
    f
}

/// A single, reusable experiment definition: one cluster configuration and
/// one workload trace, executable under any control-plane pair.
///
/// This is the entry point the experiment-orchestration layer
/// (`hierdrl-exp`) drives: a suite cell borrows its (possibly cached) trace
/// and cluster config, builds an `Experiment`, and runs whichever policies
/// the scenario names. The historical free functions
/// [`run_experiment`]/[`run_policies`] are thin wrappers around it.
///
/// # Examples
///
/// ```
/// use hierdrl_core::prelude::*;
/// use hierdrl_sim::prelude::*;
/// use hierdrl_trace::prelude::*;
///
/// let cluster = ClusterConfig::paper(4);
/// let trace = TraceGenerator::new(WorkloadConfig::google_like(1, 95_000.0))?
///     .generate_n(100);
///
/// let experiment = Experiment::new("demo", &cluster, &trace);
/// let result = experiment.run_pair(&PolicyPair::round_robin_baseline())?;
/// assert_eq!(result.outcome.totals.jobs_completed, 100);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Experiment<'a> {
    /// Display name attached to results.
    pub name: &'a str,
    /// Cluster under test.
    pub cluster: &'a ClusterConfig,
    /// Workload to replay.
    pub trace: &'a Trace,
    /// Bounds on the run.
    pub limit: RunLimit,
    /// Deterministic fault schedule: `(time_s, op)` fleet events injected
    /// into the cluster before the run starts, fired between arrivals.
    pub fleet_events: &'a [(f64, FleetOp)],
}

impl<'a> Experiment<'a> {
    /// An unbounded experiment over the given cluster and trace.
    pub fn new(name: &'a str, cluster: &'a ClusterConfig, trace: &'a Trace) -> Self {
        Self {
            name,
            cluster,
            trace,
            limit: RunLimit::unbounded(),
            fleet_events: &[],
        }
    }

    /// Replaces the run limit.
    #[must_use]
    pub fn with_limit(mut self, limit: RunLimit) -> Self {
        self.limit = limit;
        self
    }

    /// Attaches a pre-computed fleet-event (fault) schedule. Events are
    /// pushed into the cluster's queue before the run and fire at their
    /// scheduled times, interleaved deterministically with arrivals.
    #[must_use]
    pub fn with_fleet_events(mut self, events: &'a [(f64, FleetOp)]) -> Self {
        self.fleet_events = events;
        self
    }

    /// Runs pre-built policy objects, leaving them trained afterwards.
    ///
    /// # Errors
    ///
    /// Returns an error if the cluster configuration or trace is invalid.
    pub fn run(
        &self,
        allocator: &mut dyn Allocator,
        power: &mut dyn PowerManager,
    ) -> Result<ExperimentResult, String> {
        let mut cluster = Cluster::new(self.cluster.clone(), self.trace.jobs().to_vec())?;
        for (time_s, op) in self.fleet_events {
            cluster.schedule_fleet_op(SimTime::from_secs(*time_s), op.clone());
        }
        let outcome = cluster.run(allocator, power, self.limit);
        Ok(ExperimentResult {
            name: self.name.to_string(),
            latency: LatencyStats::from_jobs(cluster.completed_jobs()),
            fleet: fleet_stats(&cluster),
            outcome,
        })
    }

    /// Builds fresh policy objects from a [`PolicyPair`] and runs them.
    ///
    /// # Errors
    ///
    /// Returns an error if the cluster configuration or trace is invalid.
    pub fn run_pair(&self, pair: &PolicyPair) -> Result<ExperimentResult, String> {
        let mut allocator = pair
            .allocator
            .build(self.cluster.num_servers, self.cluster.resource_dims);
        let mut power = pair.power.build(self.cluster);
        Experiment {
            name: &pair.name,
            ..*self
        }
        .run(allocator.as_mut(), power.as_mut())
    }
}

/// An ordered sequence of workload segments run under *one* set of policy
/// objects — the online-learning / concept-drift entry point. Learners are
/// carried across segment boundaries (continuing online training on a
/// drifting stream), while the *cluster* restarts fresh each segment with
/// its clock at zero, exactly like the paper's week-scale trace segments.
///
/// The segment boundary is a bug-prone seam: any policy state anchored to
/// the previous segment's clock (pending transitions, last-arrival marks
/// feeding inter-arrival predictors) must be dropped at segment start, or
/// the learner fabricates a cross-segment interval. The simulator enforces
/// this through the `on_run_begin`/`on_run_end` hooks on both control
/// traits.
///
/// # Examples
///
/// ```
/// use hierdrl_core::prelude::*;
/// use hierdrl_sim::prelude::*;
/// use hierdrl_trace::prelude::*;
///
/// let cluster = ClusterConfig::paper(3);
/// let segments: Vec<Trace> = (0..2)
///     .map(|s| {
///         TraceGenerator::new(WorkloadConfig::google_like(s, 60_000.0))
///             .unwrap()
///             .generate_n(80)
///     })
///     .collect();
/// let refs: Vec<&Trace> = segments.iter().collect();
///
/// let mut allocator = hierdrl_sim::policies::RoundRobinAllocator::new();
/// let mut power = hierdrl_sim::policies::SleepImmediatelyPower;
/// let results = SegmentedExperiment::new("demo", &cluster, &refs)
///     .run(&mut allocator, &mut power)?;
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].outcome.totals.jobs_completed, 80);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SegmentedExperiment<'a> {
    /// Display name attached to every segment's result.
    pub name: &'a str,
    /// Cluster under test (rebuilt fresh for each segment).
    pub cluster: &'a ClusterConfig,
    /// The workload segments, in drift order.
    pub segments: &'a [&'a Trace],
    /// Bounds applied to *each* segment's run.
    pub limit: RunLimit,
    /// Per-segment fault schedules (each on its own segment clock, which
    /// restarts at zero). Segments past the end of this list run fault-free,
    /// so `&[]` means no faults anywhere.
    pub fleet_events: &'a [Vec<(f64, FleetOp)>],
}

impl<'a> SegmentedExperiment<'a> {
    /// An unbounded segmented experiment.
    pub fn new(name: &'a str, cluster: &'a ClusterConfig, segments: &'a [&'a Trace]) -> Self {
        Self {
            name,
            cluster,
            segments,
            limit: RunLimit::unbounded(),
            fleet_events: &[],
        }
    }

    /// Replaces the per-segment run limit.
    #[must_use]
    pub fn with_limit(mut self, limit: RunLimit) -> Self {
        self.limit = limit;
        self
    }

    /// Attaches per-segment fault schedules; entry `i` fires during segment
    /// `i` on that segment's own clock.
    #[must_use]
    pub fn with_fleet_events(mut self, events: &'a [Vec<(f64, FleetOp)>]) -> Self {
        self.fleet_events = events;
        self
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Runs segment `index` on the carried policy objects, leaving them
    /// trained (and ready for the next segment) afterwards. Drivers that
    /// need to interleave bookkeeping between segments (per-segment stats
    /// snapshots, timing) call this in a loop; everyone else uses
    /// [`SegmentedExperiment::run`].
    ///
    /// # Errors
    ///
    /// Returns an error if the cluster configuration or segment trace is
    /// invalid.
    pub fn run_segment(
        &self,
        index: usize,
        allocator: &mut dyn Allocator,
        power: &mut dyn PowerManager,
    ) -> Result<ExperimentResult, String> {
        Experiment::new(self.name, self.cluster, self.segments[index])
            .with_limit(self.limit)
            .with_fleet_events(self.fleet_events.get(index).map_or(&[], Vec::as_slice))
            .run(allocator, power)
            .map_err(|e| format!("segment {index}: {e}"))
    }

    /// Runs every segment in order on the carried policy objects,
    /// continuing online training across boundaries, and returns the
    /// per-segment results.
    ///
    /// # Errors
    ///
    /// Returns the first failing segment's error.
    pub fn run(
        &self,
        allocator: &mut dyn Allocator,
        power: &mut dyn PowerManager,
    ) -> Result<Vec<ExperimentResult>, String> {
        (0..self.segments.len())
            .map(|i| self.run_segment(i, allocator, power))
            .collect()
    }
}

/// Concatenates per-segment results into one whole-run
/// [`ExperimentResult`], sequentially in time: each segment restarts its
/// clock at zero, so spans and accumulated quantities *sum* (unlike
/// [`aggregate_shards`], whose shards share one clock and take the max
/// span). Sample curves are re-offset by the cumulative time and totals of
/// preceding segments, producing one continuous accumulated curve across
/// the whole drift. Latency percentiles merge job-count-weighted (the same
/// approximation as shard aggregation); fleet fractions weight by segment
/// span.
///
/// # Panics
///
/// Panics if `segments` is empty.
pub fn concat_segments(name: &str, segments: &[&ExperimentResult]) -> ExperimentResult {
    assert!(!segments.is_empty(), "concat needs >= 1 segment");
    let mut totals = hierdrl_sim::metrics::ClusterTotals::default();
    let mut samples: Vec<SamplePoint> = Vec::new();
    let mut fleet = FleetStats::default();
    let mut end_s = 0.0;
    let total_span: f64 = segments
        .iter()
        .map(|s| s.outcome.totals.time_s)
        .sum::<f64>()
        .max(1e-9);
    for seg in segments {
        let t = &seg.outcome.totals;
        // Offsets *before* accumulating this segment: its samples continue
        // the curve from where the previous segment left off.
        for p in &seg.outcome.samples {
            samples.push(SamplePoint {
                jobs_completed: totals.jobs_completed + p.jobs_completed,
                time_s: end_s + p.time_s,
                total_latency_s: totals.total_latency_s + p.total_latency_s,
                energy_joules: totals.energy_joules + p.energy_joules,
            });
        }
        totals.time_s += t.time_s;
        totals.energy_joules += t.energy_joules;
        totals.vm_time_integral += t.vm_time_integral;
        totals.queue_time_integral += t.queue_time_integral;
        totals.overload_integral += t.overload_integral;
        totals.power_watts = t.power_watts; // instantaneous: last segment's
        totals.jobs_arrived += t.jobs_arrived;
        totals.jobs_completed += t.jobs_completed;
        totals.total_latency_s += t.total_latency_s;
        totals.jobs_requeued += t.jobs_requeued;
        end_s += seg.outcome.end_time.as_secs();

        let w = t.time_s / total_span;
        fleet.busy_fraction += w * seg.fleet.busy_fraction;
        fleet.idle_fraction += w * seg.fleet.idle_fraction;
        fleet.sleep_fraction += w * seg.fleet.sleep_fraction;
        fleet.transition_fraction += w * seg.fleet.transition_fraction;
        fleet.total_wake_transitions += seg.fleet.total_wake_transitions;
    }

    let with_latency: Vec<(u64, LatencyStats)> = segments
        .iter()
        .filter_map(|s| s.latency.map(|l| (s.outcome.totals.jobs_completed, l)))
        .collect();
    let jobs_with_latency: u64 = with_latency.iter().map(|(n, _)| n).sum();
    let latency = (jobs_with_latency > 0).then(|| {
        let mut merged = LatencyStats {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        };
        for (jobs, l) in &with_latency {
            let w = *jobs as f64 / jobs_with_latency as f64;
            merged.count += l.count;
            merged.mean += w * l.mean;
            merged.p50 += w * l.p50;
            merged.p95 += w * l.p95;
            merged.p99 += w * l.p99;
            merged.max = merged.max.max(l.max);
        }
        merged
    });

    ExperimentResult {
        name: name.to_string(),
        outcome: RunOutcome {
            totals,
            end_time: SimTime::from_secs(end_s),
            samples,
        },
        latency,
        fleet,
    }
}

/// Runs pre-built policy objects on a trace. Useful when the caller owns a
/// pre-trained learner and wants to keep it afterwards.
///
/// # Errors
///
/// Returns an error if the cluster configuration or trace is invalid.
pub fn run_policies(
    name: &str,
    cluster_config: &ClusterConfig,
    trace: &Trace,
    allocator: &mut dyn Allocator,
    power: &mut dyn PowerManager,
    limit: RunLimit,
) -> Result<ExperimentResult, String> {
    Experiment::new(name, cluster_config, trace)
        .with_limit(limit)
        .run(allocator, power)
}

/// Runs a policy pair over a *streamed* arrival source — the raw-scale
/// twin of [`run_policies`]. The cluster pulls jobs lazily from `arrivals`
/// (e.g. a `GeneratorStream` wrapped in
/// [`ArrivalSource::from_stream`](hierdrl_sim::cluster::ArrivalSource)),
/// so no materialized `Vec<Job>` ever exists; combined with
/// `lazy_accounting` and `retain_completed_jobs = false` on the cluster
/// config, peak memory is bounded by the fleet size, not the trace length.
///
/// With retention off the result's `latency` percentiles are `None`
/// (per-job records were never kept); aggregate totals, the latency *sum*,
/// and the sample curves are unaffected.
///
/// # Errors
///
/// Returns an error if the cluster configuration is invalid.
pub fn run_streamed(
    name: &str,
    cluster_config: &ClusterConfig,
    arrivals: ArrivalSource,
    allocator: &mut dyn Allocator,
    power: &mut dyn PowerManager,
    limit: RunLimit,
) -> Result<ExperimentResult, String> {
    let mut cluster = Cluster::from_source(cluster_config.clone(), arrivals)?;
    let outcome = cluster.run(allocator, power, limit);
    Ok(ExperimentResult {
        name: name.to_string(),
        latency: LatencyStats::from_jobs(cluster.completed_jobs()),
        fleet: fleet_stats(&cluster),
        outcome,
    })
}

/// Runs a [`PolicyPair`] on a trace, building fresh policy objects.
///
/// # Errors
///
/// Returns an error if the cluster configuration or trace is invalid.
pub fn run_experiment(
    pair: &PolicyPair,
    cluster_config: &ClusterConfig,
    trace: &Trace,
    limit: RunLimit,
) -> Result<ExperimentResult, String> {
    Experiment::new(&pair.name, cluster_config, trace)
        .with_limit(limit)
        .run_pair(pair)
}

/// One cluster's share of a multi-cluster cell: the shard index within the
/// topology, the cluster's size, how many jobs the front-end router sent
/// it, and the full result of simulating it in isolation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardResult {
    /// Shard index (position of the cluster in the topology).
    pub cluster: usize,
    /// Servers in this cluster.
    pub servers: usize,
    /// Jobs the front-end router assigned to this cluster.
    pub jobs_routed: u64,
    /// The shard's own experiment result.
    pub result: ExperimentResult,
}

/// Aggregates independent per-cluster shard results into one fleet-level
/// [`ExperimentResult`], deterministically.
///
/// Shards share an absolute time axis (the router preserves arrival
/// times), so accumulated quantities sum, the fleet span is the longest
/// shard span, and the sample curves merge by `(time, shard index)` into
/// one fleet-wide accumulated curve. Fleet fractions are weighted by
/// server count. Latency *percentiles* cannot be recovered from per-shard
/// summaries, so the merged [`LatencyStats`] weights each shard's
/// percentiles by its job count — an approximation; exact per-cluster
/// distributions remain in the shard results.
///
/// The instantaneous `power_watts` sums each shard's final snapshot.
/// Shards that drain early are frozen in their final machine states (the
/// event queue is empty, so nothing transitions afterwards), which makes
/// the sum the fleet's steady-state power at the merged end time; prefer
/// the energy-derived `average_power_watts()` for reporting.
///
/// # Panics
///
/// Panics if `shards` is empty — an empty topology is always a caller bug.
pub fn aggregate_shards(name: &str, shards: &[ShardResult]) -> ExperimentResult {
    assert!(!shards.is_empty(), "aggregate needs >= 1 shard");
    let mut totals = hierdrl_sim::metrics::ClusterTotals::default();
    let mut end_time = SimTime::ZERO;
    for shard in shards {
        let t = &shard.result.outcome.totals;
        totals.time_s = totals.time_s.max(t.time_s);
        totals.energy_joules += t.energy_joules;
        totals.vm_time_integral += t.vm_time_integral;
        totals.queue_time_integral += t.queue_time_integral;
        totals.overload_integral += t.overload_integral;
        totals.power_watts += t.power_watts;
        totals.jobs_arrived += t.jobs_arrived;
        totals.jobs_completed += t.jobs_completed;
        totals.total_latency_s += t.total_latency_s;
        totals.jobs_requeued += t.jobs_requeued;
        if shard.result.outcome.end_time > end_time {
            end_time = shard.result.outcome.end_time;
        }
    }

    // Fleet-wide accumulated curves: a deterministic (time, shard) merge of
    // the per-shard curves, re-accumulated across shards at every point.
    let mut points: Vec<(usize, &SamplePoint)> = shards
        .iter()
        .enumerate()
        .flat_map(|(k, s)| s.result.outcome.samples.iter().map(move |p| (k, p)))
        .collect();
    points.sort_by(|(ka, a), (kb, b)| {
        a.time_s
            .partial_cmp(&b.time_s)
            .expect("sample times are finite")
            .then(ka.cmp(kb))
    });
    let mut last: Vec<SamplePoint> = vec![
        SamplePoint {
            jobs_completed: 0,
            time_s: 0.0,
            total_latency_s: 0.0,
            energy_joules: 0.0,
        };
        shards.len()
    ];
    let samples = points
        .into_iter()
        .map(|(k, p)| {
            last[k] = *p;
            SamplePoint {
                jobs_completed: last.iter().map(|q| q.jobs_completed).sum(),
                time_s: p.time_s,
                total_latency_s: last.iter().map(|q| q.total_latency_s).sum(),
                energy_joules: last.iter().map(|q| q.energy_joules).sum(),
            }
        })
        .collect();

    let total_servers: usize = shards.iter().map(|s| s.servers).sum();
    let mut fleet = FleetStats::default();
    for shard in shards {
        let w = shard.servers as f64 / total_servers.max(1) as f64;
        let f = &shard.result.fleet;
        fleet.busy_fraction += w * f.busy_fraction;
        fleet.idle_fraction += w * f.idle_fraction;
        fleet.sleep_fraction += w * f.sleep_fraction;
        fleet.transition_fraction += w * f.transition_fraction;
        fleet.total_wake_transitions += f.total_wake_transitions;
    }

    let with_latency: Vec<(u64, LatencyStats)> = shards
        .iter()
        .filter_map(|s| {
            s.result
                .latency
                .map(|l| (s.result.outcome.totals.jobs_completed, l))
        })
        .collect();
    let jobs_with_latency: u64 = with_latency.iter().map(|(n, _)| n).sum();
    let latency = (jobs_with_latency > 0).then(|| {
        let mut merged = LatencyStats {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        };
        for (jobs, l) in &with_latency {
            let w = *jobs as f64 / jobs_with_latency as f64;
            merged.count += l.count;
            merged.mean += w * l.mean;
            merged.p50 += w * l.p50;
            merged.p95 += w * l.p95;
            merged.p99 += w * l.p99;
            merged.max = merged.max.max(l.max);
        }
        merged
    });

    ExperimentResult {
        name: name.to_string(),
        outcome: RunOutcome {
            totals,
            end_time,
            samples,
        },
        latency,
        fleet,
    }
}

/// Offline pre-training of a DRL allocator (Section VII-A): epsilon-greedy
/// rollouts over several workload segments, filling the experience memory,
/// pre-training the autoencoder, and fitting the DNN. The paper uses
/// workload traces for five different clusters.
///
/// Rollouts pair the allocator with the ad-hoc sleep-immediately local
/// behaviour so the learned Q function reflects wake penalties.
///
/// # Errors
///
/// Returns an error if any rollout fails to construct.
pub fn pretrain_drl(
    allocator: &mut DrlAllocator,
    cluster_config: &ClusterConfig,
    segments: &[Trace],
) -> Result<(), String> {
    pretrain_pair(
        allocator,
        &mut SleepImmediatelyPower,
        cluster_config,
        segments,
    )
}

/// Offline pre-training of an (allocator, power manager) pair over several
/// workload segments. Used to co-train the hierarchical framework's two
/// tiers before evaluation, so the global tier's learned values reflect the
/// local tier's timeout behaviour and vice versa.
///
/// # Errors
///
/// Returns an error if any rollout fails to construct.
pub fn pretrain_pair(
    allocator: &mut dyn Allocator,
    power: &mut dyn PowerManager,
    cluster_config: &ClusterConfig,
    segments: &[Trace],
) -> Result<(), String> {
    for segment in segments {
        let mut cluster = Cluster::new(cluster_config.clone(), segment.jobs().to_vec())?;
        cluster.run(allocator, power, RunLimit::unbounded());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::DrlAllocatorConfig;
    use hierdrl_trace::generator::{TraceGenerator, WorkloadConfig};

    fn small_trace(seed: u64, n: usize) -> Trace {
        let config = WorkloadConfig::google_like(seed, 95_000.0);
        TraceGenerator::new(config).unwrap().generate_n(n)
    }

    #[test]
    fn round_robin_experiment_completes() {
        let trace = small_trace(1, 300);
        let result = run_experiment(
            &PolicyPair::round_robin_baseline(),
            &ClusterConfig::paper(5),
            &trace,
            RunLimit::unbounded(),
        )
        .unwrap();
        assert_eq!(result.outcome.totals.jobs_completed, 300);
        assert!(result.energy_kwh() > 0.0);
        assert!(result.latency.is_some());
        // Always-on: no sleeping at all.
        assert_eq!(result.fleet.sleep_fraction, 0.0);
    }

    #[test]
    fn streamed_run_matches_materialized_run_bitwise() {
        use hierdrl_sim::policies::{FixedTimeoutPower, RoundRobinAllocator};

        let trace = small_trace(3, 400);
        let config = ClusterConfig::paper(5);
        let reference = run_policies(
            "rr",
            &config,
            &trace,
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(60.0),
            RunLimit::unbounded(),
        )
        .unwrap();

        let stream = hierdrl_trace::stream::TraceStream::new(std::sync::Arc::new(trace));
        let streamed = run_streamed(
            "rr",
            &config,
            ArrivalSource::from_stream(stream),
            &mut RoundRobinAllocator::new(),
            &mut FixedTimeoutPower::new(60.0),
            RunLimit::unbounded(),
        )
        .unwrap();

        assert_eq!(reference.outcome.totals, streamed.outcome.totals);
        assert_eq!(reference.outcome.end_time, streamed.outcome.end_time);
        assert_eq!(reference.outcome.samples, streamed.outcome.samples);
        assert_eq!(reference.latency, streamed.latency);
        assert_eq!(reference.fleet, streamed.fleet);
    }

    #[test]
    fn streamed_run_without_retention_keeps_aggregates() {
        use hierdrl_sim::policies::{AlwaysOnPower, RoundRobinAllocator};

        let trace = small_trace(4, 300);
        let config = ClusterConfig::paper(4);
        let reference = run_policies(
            "rr",
            &config,
            &trace,
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        )
        .unwrap();

        let mut raw = config.clone();
        raw.lazy_accounting = true;
        raw.retain_completed_jobs = false;
        let stream = hierdrl_trace::stream::TraceStream::new(std::sync::Arc::new(trace));
        let streamed = run_streamed(
            "rr",
            &raw,
            ArrivalSource::from_stream(stream),
            &mut RoundRobinAllocator::new(),
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        )
        .unwrap();

        // Counts are exact in the raw-scale configuration; percentiles are
        // unavailable because no per-job records were retained.
        assert_eq!(
            reference.outcome.totals.jobs_completed,
            streamed.outcome.totals.jobs_completed
        );
        assert_eq!(
            reference.outcome.totals.total_latency_s,
            streamed.outcome.totals.total_latency_s
        );
        assert!(streamed.latency.is_none());
        let rel = (reference.outcome.totals.energy_joules - streamed.outcome.totals.energy_joules)
            .abs()
            / reference.outcome.totals.energy_joules;
        assert!(rel < 1e-9, "lazy energy drifted by {rel}");
    }

    #[test]
    fn fleet_fractions_sum_to_one() {
        let trace = small_trace(2, 200);
        let pair = PolicyPair {
            name: "ff+timeout".into(),
            allocator: crate::hierarchical::AllocatorKind::FirstFit,
            power: crate::hierarchical::PowerKind::FixedTimeout(60.0),
        };
        let result = run_experiment(
            &pair,
            &ClusterConfig::paper(5),
            &trace,
            RunLimit::unbounded(),
        )
        .unwrap();
        let f = result.fleet;
        let sum = f.busy_fraction + f.idle_fraction + f.sleep_fraction + f.transition_fraction;
        assert!((sum - 1.0).abs() < 1e-6, "fractions sum to {sum}");
        assert!(f.sleep_fraction > 0.0, "consolidation should sleep servers");
    }

    #[test]
    fn pretraining_then_evaluation_reuses_learner() {
        let config = ClusterConfig::paper(4);
        let drl_config = DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 100,
            ae_epochs: 2,
            ..Default::default()
        };
        let mut allocator = DrlAllocator::new(4, 3, drl_config);

        let segments: Vec<Trace> = (0..2).map(|s| small_trace(10 + s, 150)).collect();
        pretrain_drl(&mut allocator, &config, &segments).unwrap();
        let trained_decisions = allocator.stats().decisions;
        assert_eq!(trained_decisions, 300);

        let eval = small_trace(99, 100);
        let result = run_policies(
            "drl-eval",
            &config,
            &eval,
            &mut allocator,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        )
        .unwrap();
        assert_eq!(result.outcome.totals.jobs_completed, 100);
        assert_eq!(allocator.stats().decisions, trained_decisions + 100);
    }

    #[test]
    fn aggregating_one_shard_reproduces_it() {
        let trace = small_trace(5, 150);
        let result = run_experiment(
            &PolicyPair::round_robin_baseline(),
            &ClusterConfig::paper(4),
            &trace,
            RunLimit::unbounded(),
        )
        .unwrap();
        let agg = aggregate_shards(
            "fleet",
            &[ShardResult {
                cluster: 0,
                servers: 4,
                jobs_routed: 150,
                result: result.clone(),
            }],
        );
        assert_eq!(agg.name, "fleet");
        assert_eq!(agg.outcome.totals, result.outcome.totals);
        assert_eq!(agg.outcome.end_time, result.outcome.end_time);
        assert_eq!(agg.outcome.samples, result.outcome.samples);
        assert_eq!(agg.fleet, result.fleet);
        let (a, b) = (agg.latency.unwrap(), result.latency.unwrap());
        assert_eq!(a.count, b.count);
        assert!((a.mean - b.mean).abs() < 1e-9);
    }

    #[test]
    fn aggregate_sums_totals_and_merges_curves() {
        let shards: Vec<ShardResult> = (0..3)
            .map(|k| {
                let mut config = ClusterConfig::paper(3);
                config.sample_every = 40;
                let trace = small_trace(20 + k as u64, 120);
                let result = run_experiment(
                    &PolicyPair::round_robin_baseline(),
                    &config,
                    &trace,
                    RunLimit::unbounded(),
                )
                .unwrap();
                ShardResult {
                    cluster: k,
                    servers: 3,
                    jobs_routed: 120,
                    result,
                }
            })
            .collect();
        let agg = aggregate_shards("fleet", &shards);

        assert_eq!(agg.outcome.totals.jobs_completed, 360);
        let energy: f64 = shards
            .iter()
            .map(|s| s.result.outcome.totals.energy_joules)
            .sum();
        assert!((agg.outcome.totals.energy_joules - energy).abs() < 1e-6);
        let end = shards
            .iter()
            .map(|s| s.result.outcome.end_time.as_secs())
            .fold(0.0, f64::max);
        assert_eq!(agg.outcome.end_time.as_secs(), end);

        // Merged curves stay monotone and end at the fleet totals.
        for w in agg.outcome.samples.windows(2) {
            assert!(w[1].time_s >= w[0].time_s);
            assert!(w[1].jobs_completed >= w[0].jobs_completed);
            assert!(w[1].energy_joules >= w[0].energy_joules);
        }
        let n_samples: usize = shards.iter().map(|s| s.result.outcome.samples.len()).sum();
        assert_eq!(agg.outcome.samples.len(), n_samples);

        // Fractions remain a partition of time (equal weights here).
        let f = agg.fleet;
        let sum = f.busy_fraction + f.idle_fraction + f.sleep_fraction + f.transition_fraction;
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segmented_run_carries_the_learner_and_reports_per_segment() {
        let config = ClusterConfig::paper(4);
        let drl_config = DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 100,
            ae_epochs: 2,
            ..Default::default()
        };
        let mut allocator = DrlAllocator::new(4, 3, drl_config);
        let segments: Vec<Trace> = (0..3).map(|s| small_trace(30 + s, 120)).collect();
        let refs: Vec<&Trace> = segments.iter().collect();
        let results = SegmentedExperiment::new("drift", &config, &refs)
            .run(&mut allocator, &mut SleepImmediatelyPower)
            .unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.outcome.totals.jobs_completed, 120);
        }
        // Online training continued across every boundary: one decision
        // per job, accumulated over all segments.
        assert_eq!(allocator.stats().decisions, 360);
        assert!(allocator.stats().train_steps > 0);
    }

    #[test]
    fn concat_sums_time_sequentially_and_offsets_curves() {
        let mut config = ClusterConfig::paper(3);
        config.sample_every = 40;
        let results: Vec<ExperimentResult> = (0..2)
            .map(|k| {
                run_experiment(
                    &PolicyPair::round_robin_baseline(),
                    &config,
                    &small_trace(40 + k, 100),
                    RunLimit::unbounded(),
                )
                .unwrap()
            })
            .collect();
        let refs: Vec<&ExperimentResult> = results.iter().collect();
        let whole = concat_segments("drift", &refs);

        assert_eq!(whole.outcome.totals.jobs_completed, 200);
        let span: f64 = results.iter().map(|r| r.outcome.totals.time_s).sum();
        assert!((whole.outcome.totals.time_s - span).abs() < 1e-9);
        let ends: f64 = results.iter().map(|r| r.outcome.end_time.as_secs()).sum();
        assert!((whole.outcome.end_time.as_secs() - ends).abs() < 1e-9);
        let energy: f64 = results.iter().map(|r| r.outcome.totals.energy_joules).sum();
        assert!((whole.outcome.totals.energy_joules - energy).abs() < 1e-6);

        // The merged curve is one continuous accumulation: monotone in
        // time, jobs, and energy, with all points present.
        for w in whole.outcome.samples.windows(2) {
            assert!(w[1].time_s >= w[0].time_s);
            assert!(w[1].jobs_completed >= w[0].jobs_completed);
            assert!(w[1].energy_joules >= w[0].energy_joules);
        }
        let n: usize = results.iter().map(|r| r.outcome.samples.len()).sum();
        assert_eq!(whole.outcome.samples.len(), n);

        // Fractions stay a partition of time.
        let f = whole.fleet;
        let sum = f.busy_fraction + f.idle_fraction + f.sleep_fraction + f.transition_fraction;
        assert!((sum - 1.0).abs() < 1e-6);

        // Concatenating one segment reproduces it.
        let one = concat_segments("one", &refs[..1]);
        assert_eq!(one.outcome.totals, results[0].outcome.totals);
        assert_eq!(one.outcome.samples, results[0].outcome.samples);
    }

    #[test]
    fn table_one_columns_are_consistent() {
        let trace = small_trace(3, 200);
        let result = run_experiment(
            &PolicyPair::round_robin_baseline(),
            &ClusterConfig::paper(5),
            &trace,
            RunLimit::unbounded(),
        )
        .unwrap();
        // energy (kWh) == avg power (W) * span (h) / 1000
        let hours = result.outcome.end_time.as_hours();
        let expect_kwh = result.average_power_w() * hours / 1000.0;
        assert!((result.energy_kwh() - expect_kwh).abs() < 1e-9);
    }
}
