//! Policy taxonomy and the hierarchical framework bundle.
//!
//! The paper compares three systems: the round-robin baseline, DRL-based
//! resource allocation *only* (global tier with ad-hoc local power
//! behaviour), and the full hierarchical framework (DRL global tier + RL
//! local tier). [`AllocatorKind`] and [`PowerKind`] name every policy in
//! this reproduction, and [`PolicyPair`] gives the paper's three systems
//! plus the Fig. 10 fixed-timeout variants by name.

use crate::allocator::{DrlAllocator, DrlAllocatorConfig};
use crate::dpm::{RlPowerConfig, RlPowerManager};
use hierdrl_sim::cluster::{Allocator, PowerManager};
use hierdrl_sim::policies::{
    AlwaysOnPower, FirstFitAllocator, FixedTimeoutPower, LeastLoadedAllocator, RandomAllocator,
    RoundRobinAllocator, SleepImmediatelyPower,
};
use serde::{Deserialize, Serialize};

/// Every job-allocation policy available in this reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// Cyclic dispatch (the paper's baseline).
    RoundRobin,
    /// Uniform random dispatch.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Join-the-shortest-queue heuristic.
    LeastLoaded,
    /// Greedy first-fit consolidation.
    FirstFit,
    /// The DRL global tier.
    Drl(Box<DrlAllocatorConfig>),
}

impl AllocatorKind {
    /// Instantiates the allocator for a cluster of `num_servers` servers
    /// with `resource_dims` resource dimensions.
    pub fn build(&self, num_servers: usize, resource_dims: usize) -> Box<dyn Allocator> {
        match self {
            AllocatorKind::RoundRobin => Box::new(RoundRobinAllocator::new()),
            AllocatorKind::Random { seed } => Box::new(RandomAllocator::new(*seed)),
            AllocatorKind::LeastLoaded => Box::new(LeastLoadedAllocator),
            AllocatorKind::FirstFit => Box::new(FirstFitAllocator),
            AllocatorKind::Drl(config) => Box::new(DrlAllocator::new(
                num_servers,
                resource_dims,
                (**config).clone(),
            )),
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            AllocatorKind::RoundRobin => "round-robin",
            AllocatorKind::Random { .. } => "random",
            AllocatorKind::LeastLoaded => "least-loaded",
            AllocatorKind::FirstFit => "first-fit",
            AllocatorKind::Drl(_) => "drl",
        }
    }
}

/// Every local power-management policy available in this reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerKind {
    /// Servers never sleep.
    AlwaysOn,
    /// Ad-hoc: sleep the instant a server idles (Fig. 4(a)).
    SleepImmediately,
    /// Fixed timeout in seconds (the Fig. 10 baselines use 30/60/90).
    FixedTimeout(f64),
    /// The RL local tier (LSTM predictor + SMDP Q-learning).
    Rl(RlPowerConfig),
}

impl PowerKind {
    /// Instantiates the power manager for `cluster` (the RL local tier
    /// keys its shared Q-tables by the cluster's capacity classes).
    pub fn build(&self, cluster: &hierdrl_sim::config::ClusterConfig) -> Box<dyn PowerManager> {
        match self {
            PowerKind::AlwaysOn => Box::new(AlwaysOnPower),
            PowerKind::SleepImmediately => Box::new(SleepImmediatelyPower),
            PowerKind::FixedTimeout(t) => Box::new(FixedTimeoutPower::new(*t)),
            PowerKind::Rl(config) => Box::new(RlPowerManager::for_cluster(cluster, config.clone())),
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> String {
        match self {
            PowerKind::AlwaysOn => "always-on".into(),
            PowerKind::SleepImmediately => "sleep-immediately".into(),
            PowerKind::FixedTimeout(t) => format!("timeout-{t}s"),
            PowerKind::Rl(_) => "rl-dpm".into(),
        }
    }
}

/// A named (allocator, power manager) pair — one "system" in the paper's
/// comparisons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyPair {
    /// Display name.
    pub name: String,
    /// The global tier.
    pub allocator: AllocatorKind,
    /// The local tier.
    pub power: PowerKind,
}

impl PolicyPair {
    /// The round-robin baseline of Figs. 8/9: even dispatch keeps all
    /// servers busy, so they effectively never sleep.
    pub fn round_robin_baseline() -> Self {
        Self {
            name: "round-robin".into(),
            allocator: AllocatorKind::RoundRobin,
            power: PowerKind::AlwaysOn,
        }
    }

    /// "DRL-based resource allocation ONLY": the global tier with the
    /// ad-hoc local behaviour of Fig. 4(a).
    pub fn drl_only(drl: DrlAllocatorConfig) -> Self {
        Self {
            name: "drl-only".into(),
            allocator: AllocatorKind::Drl(Box::new(drl)),
            power: PowerKind::SleepImmediately,
        }
    }

    /// The full hierarchical framework: DRL global tier + RL local tier.
    pub fn hierarchical(drl: DrlAllocatorConfig, dpm: RlPowerConfig) -> Self {
        Self {
            name: "hierarchical".into(),
            allocator: AllocatorKind::Drl(Box::new(drl)),
            power: PowerKind::Rl(dpm),
        }
    }

    /// A Fig. 10 baseline: DRL global tier + fixed local timeout.
    pub fn drl_fixed_timeout(drl: DrlAllocatorConfig, timeout_s: f64) -> Self {
        Self {
            name: format!("drl+timeout-{timeout_s}s"),
            allocator: AllocatorKind::Drl(Box::new(drl)),
            power: PowerKind::FixedTimeout(timeout_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_working_policies() {
        for kind in [
            AllocatorKind::RoundRobin,
            AllocatorKind::Random { seed: 1 },
            AllocatorKind::LeastLoaded,
            AllocatorKind::FirstFit,
        ] {
            let _ = kind.build(4, 3);
        }
        let cluster = hierdrl_sim::config::ClusterConfig::paper(4);
        for kind in [
            PowerKind::AlwaysOn,
            PowerKind::SleepImmediately,
            PowerKind::FixedTimeout(30.0),
        ] {
            let _ = kind.build(&cluster);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AllocatorKind::RoundRobin.name(), "round-robin");
        assert_eq!(PowerKind::FixedTimeout(60.0).name(), "timeout-60s");
        assert_eq!(PolicyPair::round_robin_baseline().name, "round-robin");
    }

    #[test]
    fn paper_systems_have_expected_tiers() {
        let rr = PolicyPair::round_robin_baseline();
        assert_eq!(rr.power, PowerKind::AlwaysOn);

        let drl_only = PolicyPair::drl_only(DrlAllocatorConfig::default());
        assert_eq!(drl_only.power, PowerKind::SleepImmediately);
        assert!(matches!(drl_only.allocator, AllocatorKind::Drl(_)));

        let hier =
            PolicyPair::hierarchical(DrlAllocatorConfig::default(), RlPowerConfig::default());
        assert!(matches!(hier.power, PowerKind::Rl(_)));
    }

    #[test]
    fn serde_round_trip() {
        let p = PolicyPair::drl_fixed_timeout(DrlAllocatorConfig::default(), 60.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: PolicyPair = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
