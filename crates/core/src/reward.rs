//! The global tier's reward function (Eqn. 4):
//!
//! ```text
//! r(t) = -w1 * TotalPower(t) - w2 * NumVMs(t) - w3 * ReliObj(t)
//! ```
//!
//! By Little's theorem the time-average number of VMs in the system is
//! proportional to average VM latency, so this reward jointly optimizes a
//! linear combination of power, latency, and reliability. Between two
//! decision epochs the simulator integrates each term exactly; this module
//! converts the integral deltas into the time-average reward *rate* the
//! SMDP update consumes.

use hierdrl_sim::metrics::ClusterTotals;
use serde::{Deserialize, Serialize};

/// Weights of the three reward terms, applied to *normalized* quantities:
/// power is divided by the cluster's aggregate peak power, the VM count by
/// the number of servers, and the reliability overload is used as-is
/// (it is already a small dimensionless excess).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardWeights {
    /// `w1`: total power consumption.
    pub power: f64,
    /// `w2`: number of *waiting* VMs. The paper's Eqn. 4 counts all VMs in
    /// the system; the running-job component is policy-invariant (every job
    /// holds resources for its fixed duration wherever it runs), so this
    /// implementation counts the queue only — the same objective up to an
    /// additive constant, with far less reward noise.
    pub vms: f64,
    /// `w3`: reliability objective (hot-spot overload).
    pub reliability: f64,
}

impl RewardWeights {
    /// A balanced default: consolidation pays for itself only when the
    /// latency penalty stays moderate. With these weights, queueing one job
    /// breaks even with keeping an extra server awake at a waiting time of
    /// a few hundred seconds — the operating point the paper reports.
    pub fn balanced() -> Self {
        Self {
            power: 1.0,
            vms: 2.0,
            reliability: 0.5,
        }
    }

    /// Validates the weights.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid weight.
    pub fn validate(&self) -> Result<(), String> {
        for (name, w) in [
            ("power", self.power),
            ("vms", self.vms),
            ("reliability", self.reliability),
        ] {
            if !(w.is_finite() && w >= 0.0) {
                return Err(format!("weight {name} must be >= 0, got {w}"));
            }
        }
        Ok(())
    }
}

impl Default for RewardWeights {
    fn default() -> Self {
        Self::balanced()
    }
}

/// Computes the time-average reward rate over the interval between two
/// totals snapshots. Returns `0.0` for an empty interval.
///
/// `num_servers` normalizes the VM term; `fleet_peak_watts` — the
/// *aggregate* peak power of the fleet, i.e. `M * peak_watts` for a
/// homogeneous cluster and the capacity-scaled sum
/// ([`ClusterConfig::total_peak_scale`](hierdrl_sim::config::ClusterConfig::total_peak_scale)
/// `* peak_watts`) for a heterogeneous one — normalizes the power term.
///
/// # Panics
///
/// Panics if `num_servers == 0` or `fleet_peak_watts <= 0`.
pub fn reward_rate_between(
    prev: &ClusterTotals,
    cur: &ClusterTotals,
    weights: &RewardWeights,
    num_servers: usize,
    fleet_peak_watts: f64,
) -> f64 {
    assert!(num_servers > 0, "num_servers must be positive");
    assert!(fleet_peak_watts > 0.0, "fleet_peak_watts must be positive");
    let tau = cur.time_s - prev.time_s;
    if tau <= 0.0 {
        return 0.0;
    }
    let m = num_servers as f64;
    let power_norm = (cur.energy_joules - prev.energy_joules) / tau / fleet_peak_watts;
    let vms_norm = (cur.queue_time_integral - prev.queue_time_integral) / tau / m;
    let reli = (cur.overload_integral - prev.overload_integral) / tau;
    -(weights.power * power_norm + weights.vms * vms_norm + weights.reliability * reli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(t: f64, e: f64, vm: f64, reli: f64) -> ClusterTotals {
        ClusterTotals {
            time_s: t,
            energy_joules: e,
            vm_time_integral: vm,
            queue_time_integral: vm,
            overload_integral: reli,
            ..Default::default()
        }
    }

    #[test]
    fn reward_is_zero_for_empty_interval() {
        let a = totals(10.0, 100.0, 5.0, 0.0);
        let r = reward_rate_between(&a, &a, &RewardWeights::balanced(), 10, 1_450.0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn reward_is_negative_under_load() {
        let a = totals(0.0, 0.0, 0.0, 0.0);
        let b = totals(10.0, 14_500.0, 50.0, 0.1);
        let r = reward_rate_between(&a, &b, &RewardWeights::balanced(), 10, 1_450.0);
        assert!(r < 0.0);
    }

    #[test]
    fn more_power_means_lower_reward() {
        let a = totals(0.0, 0.0, 0.0, 0.0);
        let low = totals(10.0, 1_000.0, 10.0, 0.0);
        let high = totals(10.0, 5_000.0, 10.0, 0.0);
        let w = RewardWeights::balanced();
        assert!(
            reward_rate_between(&a, &low, &w, 10, 1_450.0)
                > reward_rate_between(&a, &high, &w, 10, 1_450.0)
        );
    }

    #[test]
    fn normalization_scales_out_cluster_size() {
        // Doubling servers, fleet peak, and power leaves the rate unchanged.
        let a = totals(0.0, 0.0, 0.0, 0.0);
        let b10 = totals(10.0, 10_000.0, 40.0, 0.0);
        let b20 = totals(10.0, 20_000.0, 80.0, 0.0);
        let w = RewardWeights::balanced();
        let r10 = reward_rate_between(&a, &b10, &w, 10, 1_450.0);
        let r20 = reward_rate_between(&a, &b20, &w, 20, 2_900.0);
        assert!((r10 - r20).abs() < 1e-12);
    }

    #[test]
    fn weights_validate() {
        assert!(RewardWeights::balanced().validate().is_ok());
        let bad = RewardWeights {
            power: -1.0,
            ..RewardWeights::balanced()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn reliability_term_penalizes_overload() {
        let a = totals(0.0, 0.0, 0.0, 0.0);
        let calm = totals(10.0, 1_000.0, 10.0, 0.0);
        let hot = totals(10.0, 1_000.0, 10.0, 2.0);
        let w = RewardWeights::balanced();
        assert!(
            reward_rate_between(&a, &calm, &w, 10, 1_450.0)
                > reward_rate_between(&a, &hot, &w, 10, 1_450.0)
        );
    }
}
