//! Property-based invariants of the simulator and substrates, exercised
//! with randomized workloads and configurations.

use hierdrl::rl::prelude::*;
use hierdrl::sim::prelude::*;
use proptest::prelude::*;

/// Strategy: a small, valid job list sorted by arrival.
fn arb_jobs(max_jobs: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0.0f64..5_000.0, // arrival
            1.0f64..2_000.0, // duration
            0.01f64..0.9,    // cpu
            0.01f64..0.9,    // mem
            0.001f64..0.3,   // disk
        ),
        1..max_jobs,
    )
    .prop_map(|raw| {
        let mut jobs: Vec<Job> = raw
            .into_iter()
            .map(|(t, d, c, m, k)| (SimTime::from_secs(t), d, ResourceVec::cpu_mem_disk(c, m, k)))
            .enumerate()
            .map(|(i, (t, d, dem))| Job::new(JobId(i as u64), t, d, dem))
            .collect();
        jobs.sort_by_key(|a| a.arrival);
        jobs
    })
}

fn run_cluster(jobs: Vec<Job>, servers: usize, timeout: f64) -> (Cluster, RunOutcome) {
    let mut cluster = Cluster::new(ClusterConfig::paper(servers), jobs).expect("valid cluster");
    let outcome = cluster.run(
        &mut RoundRobinAllocator::new(),
        &mut FixedTimeoutPower::new(timeout),
        RunLimit::unbounded(),
    );
    (cluster, outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every job completes exactly once, and no later than physically
    /// possible (arrival + duration is a lower bound on completion).
    #[test]
    fn all_jobs_complete_and_respect_causality(jobs in arb_jobs(40), servers in 1usize..6) {
        let expected = jobs.len();
        let (cluster, outcome) = run_cluster(jobs.clone(), servers, 30.0);
        prop_assert_eq!(outcome.totals.jobs_completed as usize, expected);
        for rec in cluster.completed_jobs() {
            let job = jobs.iter().find(|j| j.id == rec.id).expect("job exists");
            prop_assert!(rec.started >= job.arrival);
            prop_assert!(rec.finished.as_secs() >= job.arrival.as_secs() + job.duration - 1e-6);
            prop_assert!((rec.service_time() - job.duration).abs() < 1e-6);
        }
    }

    /// Energy is non-negative, bounded by peak power times elapsed time,
    /// and equals the sum of per-server energies.
    #[test]
    fn energy_is_conserved_and_bounded(jobs in arb_jobs(30), servers in 1usize..5) {
        let (cluster, outcome) = run_cluster(jobs, servers, 60.0);
        let sum: f64 = cluster.servers().iter().map(|s| s.stats().energy_joules).sum();
        prop_assert!((outcome.totals.energy_joules - sum).abs() < 1e-6);
        prop_assert!(outcome.totals.energy_joules >= 0.0);
        let bound = 145.0 * servers as f64 * outcome.end_time.as_secs() + 1e-6;
        prop_assert!(outcome.totals.energy_joules <= bound,
            "energy {} exceeds peak bound {}", outcome.totals.energy_joules, bound);
    }

    /// Per-server time accounting partitions the whole run.
    #[test]
    fn state_times_partition_run(jobs in arb_jobs(30), servers in 1usize..5) {
        let (cluster, outcome) = run_cluster(jobs, servers, 45.0);
        let total = outcome.end_time.as_secs();
        for s in cluster.servers() {
            let st = s.stats();
            let sum = st.busy_seconds + st.idle_seconds + st.sleep_seconds + st.transition_seconds;
            prop_assert!((sum - total).abs() < 1e-6,
                "state times {} do not sum to run length {}", sum, total);
        }
    }

    /// Resource capacity is never exceeded: the jobs running concurrently
    /// on a server always fit (verified post-hoc from completion records).
    #[test]
    fn capacity_is_never_exceeded(jobs in arb_jobs(30), servers in 1usize..4) {
        let (cluster, _) = run_cluster(jobs.clone(), servers, 30.0);
        // Sweep each server's records: at any job's start, the sum of
        // demands of overlapping jobs must fit.
        for sid in 0..servers {
            let recs: Vec<_> = cluster
                .completed_jobs()
                .iter()
                .filter(|r| r.server == ServerId(sid))
                .collect();
            for r in &recs {
                let mut used = ResourceVec::zeros(3);
                for other in &recs {
                    // Overlapping execution intervals.
                    if other.started.as_secs() <= r.started.as_secs() + 1e-9
                        && other.finished.as_secs() > r.started.as_secs() + 1e-9
                    {
                        let job = jobs.iter().find(|j| j.id == other.id).unwrap();
                        used.add_assign(&job.demand);
                    }
                }
                for p in 0..3 {
                    prop_assert!(used.get(p) <= 1.0 + 1e-6,
                        "server {sid} exceeded capacity in dim {p}: {}", used.get(p));
                }
            }
        }
    }

    /// FCFS: on any single server, start order equals arrival order.
    #[test]
    fn fcfs_start_order_matches_arrival_order(jobs in arb_jobs(30)) {
        let (cluster, _) = run_cluster(jobs, 1, 30.0);
        let recs = cluster.completed_jobs();
        let mut by_start: Vec<_> = recs.to_vec();
        by_start.sort_by(|a, b| a.started.cmp(&b.started).then(a.arrival.cmp(&b.arrival)));
        for w in by_start.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival,
                "job {:?} started before earlier-arriving {:?}", w[1].id, w[0].id);
        }
    }

    /// Replay memory never exceeds capacity and sampling returns the
    /// requested batch size once non-empty.
    #[test]
    fn replay_memory_bounds(capacity in 1usize..64, pushes in 0usize..200) {
        let mut memory = ReplayMemory::new(capacity);
        for i in 0..pushes {
            memory.push(i);
        }
        prop_assert!(memory.len() <= capacity);
        prop_assert_eq!(memory.len(), pushes.min(capacity));
        let mut rng = rand::rngs::OsRng;
        let batch = memory.sample(16, &mut rng);
        if pushes == 0 {
            prop_assert!(batch.is_empty());
        } else {
            prop_assert_eq!(batch.len(), 16);
        }
    }

    /// The SMDP fixed point under constant reward matches the closed form.
    /// (The per-iteration contraction is `1 - alpha (1 - e^{-beta tau})`,
    /// so tiny sojourns converge slowly; the tau range keeps the iteration
    /// budget sufficient.)
    #[test]
    fn smdp_fixed_point(r in -10.0f64..0.0, tau in 1.0f64..100.0) {
        let params = SmdpParams::new(0.3, 0.01);
        let w = reward_weight(params.beta, tau);
        let d = discount(params.beta, tau);
        let expected = w * r / (1.0 - d);
        let mut q = 0.0;
        for _ in 0..10_000 {
            q = smdp_update(&params, q, r, tau, q);
        }
        prop_assert!((q - expected).abs() < 1e-3 * expected.abs().max(1.0),
            "q {} vs fixed point {}", q, expected);
    }

    /// Discretizer bins are exhaustive and ordered.
    #[test]
    fn discretizer_bins_partition(lo in 0.5f64..10.0, ratio in 1.5f64..20.0, x in 0.0f64..100_000.0) {
        let hi = lo * ratio;
        let d = Discretizer::log_spaced(lo, hi, 6);
        let bin = d.bin(x);
        prop_assert!(bin < d.num_bins());
        // Monotone: larger x never maps to a smaller bin.
        prop_assert!(d.bin(x * 2.0 + 1.0) >= bin);
    }
}
