//! Model persistence: trained policies snapshot to JSON and restore with
//! identical behaviour.

use hierdrl::core::prelude::*;
use hierdrl::sim::prelude::*;
use hierdrl::trace::prelude::*;

fn small_trace(seed: u64, jobs: usize, m: usize) -> Trace {
    let config = WorkloadConfig::google_like(seed, 95_000.0 * m as f64 / 30.0);
    TraceGenerator::new(config).unwrap().generate_n(jobs)
}

fn quick_drl_config() -> DrlAllocatorConfig {
    DrlAllocatorConfig {
        warmup_decisions: 20,
        ae_pretrain_samples: 60,
        ae_epochs: 2,
        ..Default::default()
    }
}

#[test]
fn drl_snapshot_round_trips_through_json() {
    let m = 4;
    let cluster = ClusterConfig::paper(m);
    let mut allocator = DrlAllocator::new(m, 3, quick_drl_config());
    let segments = vec![small_trace(1, 200, m)];
    pretrain_drl(&mut allocator, &cluster, &segments).unwrap();

    let snapshot = allocator.snapshot();
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let restored_snapshot: DrlSnapshot = serde_json::from_str(&json).expect("deserializes");
    let mut restored = DrlAllocator::from_snapshot(restored_snapshot);

    // The restored learner carries the trained statistics and keeps working.
    assert_eq!(restored.stats().decisions, allocator.stats().decisions);
    assert_eq!(restored.stats().train_steps, allocator.stats().train_steps);
    assert!(restored.stats().autoencoder_trained);

    let eval = small_trace(9, 100, m);
    let result = run_policies(
        "restored",
        &cluster,
        &eval,
        &mut restored,
        &mut hierdrl::sim::policies::SleepImmediatelyPower,
        RunLimit::unbounded(),
    )
    .unwrap();
    assert_eq!(result.outcome.totals.jobs_completed, 100);
}

#[test]
fn frozen_restored_policies_act_identically() {
    // Two copies restored from the same snapshot, with learning and
    // exploration effects controlled, must produce identical runs.
    let m = 4;
    let cluster = ClusterConfig::paper(m);
    let mut allocator = DrlAllocator::new(m, 3, quick_drl_config());
    let segments = vec![small_trace(2, 150, m)];
    pretrain_drl(&mut allocator, &cluster, &segments).unwrap();
    let snapshot = allocator.snapshot();

    let run = |snap: DrlSnapshot| {
        let mut alloc = DrlAllocator::from_snapshot(snap);
        alloc.set_learning(false);
        let eval = small_trace(8, 120, m);
        let r = run_policies(
            "frozen",
            &cluster,
            &eval,
            &mut alloc,
            &mut hierdrl::sim::policies::SleepImmediatelyPower,
            RunLimit::unbounded(),
        )
        .unwrap();
        (
            r.outcome.totals.energy_joules,
            r.outcome.totals.total_latency_s,
        )
    };
    assert_eq!(run(snapshot.clone()), run(snapshot));
}

#[test]
fn dpm_snapshot_round_trips_through_json() {
    let m = 3;
    let cluster = ClusterConfig::paper(m);
    let mut dpm = RlPowerManager::new(m, RlPowerConfig::default());
    let trace = small_trace(3, 300, m);
    let mut cluster_sim = Cluster::new(cluster, trace.into_jobs()).unwrap();
    cluster_sim.run(&mut FirstFitAllocator, &mut dpm, RunLimit::unbounded());
    assert!(dpm.stats().updates > 0);

    let json = serde_json::to_string(&dpm.snapshot()).unwrap();
    let snapshot: DpmSnapshot = serde_json::from_str(&json).unwrap();
    let restored = RlPowerManager::from_snapshot(m, snapshot);
    assert_eq!(restored.stats().updates, dpm.stats().updates);
}

#[test]
#[should_panic(expected = "expected 5")]
fn dpm_snapshot_rejects_wrong_table_count() {
    let config = RlPowerConfig {
        shared_learning: false,
        ..Default::default()
    };
    let dpm = RlPowerManager::new(3, config);
    let snapshot = dpm.snapshot();
    // Restoring per-server tables onto a different cluster size must fail.
    let _ = RlPowerManager::from_snapshot(5, snapshot);
}
