//! End-to-end integration tests spanning all crates: every policy pair runs
//! on realistic synthetic workloads, results are deterministic under fixed
//! seeds, and cross-policy orderings match the physics of the model.

use hierdrl::core::prelude::*;
use hierdrl::sim::prelude::*;
use hierdrl::trace::prelude::*;

fn small_trace(seed: u64, jobs: usize, m: usize) -> Trace {
    let config = WorkloadConfig::google_like(seed, 95_000.0 * m as f64 / 30.0);
    TraceGenerator::new(config).unwrap().generate_n(jobs)
}

#[test]
fn every_policy_pair_completes_all_jobs() {
    let m = 5;
    let cluster = ClusterConfig::paper(m);
    let trace = small_trace(1, 200, m);
    let pairs = vec![
        PolicyPair::round_robin_baseline(),
        PolicyPair {
            name: "random+timeout".into(),
            allocator: AllocatorKind::Random { seed: 5 },
            power: PowerKind::FixedTimeout(45.0),
        },
        PolicyPair {
            name: "least-loaded+sleep".into(),
            allocator: AllocatorKind::LeastLoaded,
            power: PowerKind::SleepImmediately,
        },
        PolicyPair {
            name: "first-fit+sleep".into(),
            allocator: AllocatorKind::FirstFit,
            power: PowerKind::SleepImmediately,
        },
        PolicyPair::drl_only(DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 50,
            ae_epochs: 2,
            ..Default::default()
        }),
        PolicyPair::hierarchical(
            DrlAllocatorConfig {
                warmup_decisions: 20,
                ae_pretrain_samples: 50,
                ae_epochs: 2,
                ..Default::default()
            },
            RlPowerConfig::default(),
        ),
    ];
    for pair in pairs {
        let result = run_experiment(&pair, &cluster, &trace, RunLimit::unbounded())
            .unwrap_or_else(|e| panic!("{} failed: {e}", pair.name));
        assert_eq!(
            result.outcome.totals.jobs_completed, 200,
            "{} did not complete all jobs",
            pair.name
        );
        assert!(result.energy_kwh() > 0.0, "{} used no energy", pair.name);
        assert!(
            result.outcome.totals.total_latency_s > 0.0,
            "{} reported zero latency",
            pair.name
        );
    }
}

#[test]
fn runs_are_deterministic_under_fixed_seeds() {
    let m = 4;
    let cluster = ClusterConfig::paper(m);
    let trace = small_trace(2, 150, m);
    let run = || {
        let pair = PolicyPair::drl_only(DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 50,
            ae_epochs: 2,
            seed: 99,
            ..Default::default()
        });
        let r = run_experiment(&pair, &cluster, &trace, RunLimit::unbounded()).unwrap();
        (
            r.outcome.totals.energy_joules,
            r.outcome.totals.total_latency_s,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn always_on_beats_sleep_immediately_on_latency_and_loses_on_energy() {
    // With a consolidating allocator and batched arrivals, sleeping the
    // instant a server idles must pay wake latency; staying on must pay
    // idle power.
    let m = 4;
    let cluster = ClusterConfig::paper(m);
    let trace = small_trace(3, 400, m);
    let run = |power: PowerKind, name: &str| {
        run_experiment(
            &PolicyPair {
                name: name.into(),
                allocator: AllocatorKind::FirstFit,
                power,
            },
            &cluster,
            &trace,
            RunLimit::unbounded(),
        )
        .unwrap()
    };
    let on = run(PowerKind::AlwaysOn, "on");
    let sleepy = run(PowerKind::SleepImmediately, "sleepy");
    assert!(
        on.outcome.totals.total_latency_s <= sleepy.outcome.totals.total_latency_s,
        "always-on latency {} should not exceed sleep-immediately {}",
        on.outcome.totals.total_latency_s,
        sleepy.outcome.totals.total_latency_s
    );
    assert!(
        sleepy.energy_kwh() < on.energy_kwh(),
        "sleeping should save energy: {} vs {}",
        sleepy.energy_kwh(),
        on.energy_kwh()
    );
}

#[test]
fn first_fit_consolidation_saves_energy_vs_round_robin() {
    let m = 8;
    let cluster = ClusterConfig::paper(m);
    let trace = small_trace(4, 600, m);
    let rr = run_experiment(
        &PolicyPair::round_robin_baseline(),
        &cluster,
        &trace,
        RunLimit::unbounded(),
    )
    .unwrap();
    let ff = run_experiment(
        &PolicyPair {
            name: "first-fit+sleep".into(),
            allocator: AllocatorKind::FirstFit,
            power: PowerKind::SleepImmediately,
        },
        &cluster,
        &trace,
        RunLimit::unbounded(),
    )
    .unwrap();
    assert!(
        ff.energy_kwh() < rr.energy_kwh() * 0.8,
        "consolidation should save >20% energy: {} vs {}",
        ff.energy_kwh(),
        rr.energy_kwh()
    );
}

#[test]
fn pretrained_allocator_transfers_across_traces() {
    let m = 4;
    let cluster = ClusterConfig::paper(m);
    let mut allocator = DrlAllocator::new(
        m,
        3,
        DrlAllocatorConfig {
            warmup_decisions: 30,
            ae_pretrain_samples: 60,
            ae_epochs: 2,
            ..Default::default()
        },
    );
    let segments: Vec<Trace> = (0..2).map(|i| small_trace(10 + i, 150, m)).collect();
    pretrain_drl(&mut allocator, &cluster, &segments).unwrap();
    assert!(allocator.stats().train_steps > 0);

    let eval = small_trace(50, 120, m);
    let result = run_policies(
        "transfer",
        &cluster,
        &eval,
        &mut allocator,
        &mut hierdrl::sim::policies::SleepImmediatelyPower,
        RunLimit::unbounded(),
    )
    .unwrap();
    assert_eq!(result.outcome.totals.jobs_completed, 120);
}

#[test]
fn run_limit_by_jobs_is_respected() {
    let m = 3;
    let cluster = ClusterConfig::paper(m);
    let trace = small_trace(6, 300, m);
    let result = run_experiment(
        &PolicyPair::round_robin_baseline(),
        &cluster,
        &trace,
        RunLimit::jobs(100),
    )
    .unwrap();
    assert_eq!(result.outcome.totals.jobs_completed, 100);
}

#[test]
fn sample_curves_are_monotone_for_all_policies() {
    let m = 4;
    let mut cluster = ClusterConfig::paper(m);
    cluster.sample_every = 50;
    let trace = small_trace(7, 400, m);
    for pair in [
        PolicyPair::round_robin_baseline(),
        PolicyPair {
            name: "ff".into(),
            allocator: AllocatorKind::FirstFit,
            power: PowerKind::FixedTimeout(30.0),
        },
    ] {
        let result = run_experiment(&pair, &cluster, &trace, RunLimit::unbounded()).unwrap();
        let samples = result.samples();
        assert!(!samples.is_empty(), "{} produced no samples", pair.name);
        for w in samples.windows(2) {
            assert!(w[1].jobs_completed > w[0].jobs_completed);
            assert!(w[1].total_latency_s >= w[0].total_latency_s);
            assert!(w[1].energy_joules >= w[0].energy_joules);
            assert!(w[1].time_s >= w[0].time_s);
        }
    }
}
