//! Offline pre-training and model persistence: train the two tiers on
//! workload segments (Section VII-A's offline phase), snapshot them to
//! JSON, and evaluate the restored policies on a fresh trace.
//!
//! ```sh
//! cargo run --release --example pretrain_and_save
//! ```

use hierdrl::core::prelude::*;
use hierdrl::sim::prelude::*;
use hierdrl::trace::prelude::*;

fn main() -> Result<(), String> {
    let m = 8;
    let cluster = ClusterConfig::paper(m);
    let jobs_per_week = 95_000.0 * m as f64 / 30.0;

    // --- Offline phase: pre-train on five workload segments. ---
    let segments: Vec<Trace> = (0..5)
        .map(|i| {
            TraceGenerator::new(WorkloadConfig::google_like(100 + i, jobs_per_week))
                .expect("valid workload")
                .generate_n(1_500)
        })
        .collect();

    let mut allocator = DrlAllocator::new(m, 3, DrlAllocatorConfig::default());
    let mut dpm = RlPowerManager::new(m, RlPowerConfig::default());
    pretrain_pair(&mut allocator, &mut dpm, &cluster, &segments)?;
    println!(
        "pre-trained: {} decisions, {} DNN updates, {} local updates",
        allocator.stats().decisions,
        allocator.stats().train_steps,
        dpm.stats().updates
    );

    // --- Persist both tiers. ---
    let drl_json = serde_json::to_string(&allocator.snapshot()).map_err(|e| e.to_string())?;
    let dpm_json = serde_json::to_string(&dpm.snapshot()).map_err(|e| e.to_string())?;
    println!(
        "snapshot sizes: global {:.1} KiB, local {:.1} KiB",
        drl_json.len() as f64 / 1024.0,
        dpm_json.len() as f64 / 1024.0
    );

    // --- Restore and evaluate on an unseen trace. ---
    let drl_snapshot: DrlSnapshot = serde_json::from_str(&drl_json).map_err(|e| e.to_string())?;
    let dpm_snapshot: DpmSnapshot = serde_json::from_str(&dpm_json).map_err(|e| e.to_string())?;
    let mut restored_drl = DrlAllocator::from_snapshot(drl_snapshot);
    let mut restored_dpm = RlPowerManager::from_snapshot(m, dpm_snapshot);

    let eval =
        TraceGenerator::new(WorkloadConfig::google_like(999, jobs_per_week))?.generate_n(2_000);
    let result = run_policies(
        "restored hierarchical",
        &cluster,
        &eval,
        &mut restored_drl,
        &mut restored_dpm,
        RunLimit::unbounded(),
    )?;
    println!(
        "restored policy: {:.2} kWh, {:.0} s/job, sleep fraction {:.2}",
        result.energy_kwh(),
        result.mean_latency_s(),
        result.fleet.sleep_fraction
    );
    Ok(())
}
