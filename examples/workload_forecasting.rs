//! Workload forecasting: the local tier's LSTM inter-arrival predictor
//! versus the simpler predictors the paper argues against (Section VI-A).
//!
//! Streams per-server inter-arrival times from a synthetic bursty workload
//! through each predictor and reports one-step prediction error.
//!
//! ```sh
//! cargo run --release --example workload_forecasting
//! ```

use hierdrl::core::prelude::*;
use hierdrl::trace::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scores a predictor on a stream: mean absolute error in log-space (inter-
/// arrival times span orders of magnitude, so log error is the fair metric).
fn score(mut p: impl IatPredictor, stream: &[f64]) -> (f64, usize) {
    let mut total = 0.0;
    let mut scored = 0;
    for &iat in stream {
        if let Some(pred) = p.predict() {
            total += (pred.max(1.0).ln() - iat.max(1.0).ln()).abs();
            scored += 1;
        }
        p.observe(iat);
    }
    (total / scored.max(1) as f64, scored)
}

fn main() -> Result<(), String> {
    // A bursty single-server arrival stream: the inter-arrival times of a
    // Google-like trace (batched submissions create the bimodal short/long
    // structure the LSTM is meant to capture).
    let workload = WorkloadConfig::google_like(7, 95_000.0 / 30.0 * 2.0);
    let trace = TraceGenerator::new(workload)?.generate(7.0 * SECS_PER_DAY);
    let stream = trace.inter_arrival_times();
    println!("stream: {} inter-arrival times", stream.len());

    let mut rng = StdRng::seed_from_u64(1);
    let lstm = LstmIatPredictor::new(PredictorConfig::default(), &mut rng);

    println!(
        "\n{:<22} {:>16} {:>10}",
        "predictor", "log-space MAE", "scored"
    );
    let (mae, n) = score(lstm, &stream);
    println!("{:<22} {:>16.4} {:>10}", "lstm (paper)", mae, n);
    let (mae, n) = score(LastValuePredictor::default(), &stream);
    println!("{:<22} {:>16.4} {:>10}", "last-value", mae, n);
    let (mae, n) = score(MovingAveragePredictor::new(35), &stream);
    println!("{:<22} {:>16.4} {:>10}", "moving-average(35)", mae, n);
    let (mae, n) = score(EwmaPredictor::new(0.3), &stream);
    println!("{:<22} {:>16.4} {:>10}", "ewma(0.3)", mae, n);

    Ok(())
}
