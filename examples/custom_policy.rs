//! Extending the framework: plugging a custom allocation policy and a
//! custom power-management policy into the simulator.
//!
//! Demonstrates the two control-plane traits ([`Allocator`] and
//! [`PowerManager`]) that the paper's tiers also implement, so downstream
//! users can prototype their own schedulers against the same cluster model
//! and metrics.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use hierdrl::sim::prelude::*;
use hierdrl::trace::prelude::*;

/// A "power-aware best-fit" allocator: among awake servers where the job
/// fits without queueing, pick the one whose CPU would become fullest
/// (classic best-fit-decreasing intuition); otherwise wake the first
/// sleeping server; otherwise join the shortest queue.
struct BestFitAllocator;

impl Allocator for BestFitAllocator {
    fn select(&mut self, job: &Job, view: &ClusterView<'_>) -> ServerId {
        let mut best: Option<(usize, f64)> = None; // (id, resulting cpu)
        let mut sleeper = None;
        let mut shortest: Option<(usize, usize)> = None;
        for (i, s) in view.servers().iter().enumerate() {
            if s.state().is_on() {
                if s.queue_len() == 0 && s.used().fits_with(&job.demand, s.capacity()) {
                    let after = s.cpu_utilization() + job.demand.cpu();
                    if best.is_none_or(|(_, b)| after > b) {
                        best = Some((i, after));
                    }
                }
                let key = (s.jobs_in_system(), i);
                if shortest.is_none_or(|f| key < f) {
                    shortest = Some(key);
                }
            } else if sleeper.is_none() {
                sleeper = Some(i);
            }
        }
        if let Some((i, _)) = best {
            ServerId(i)
        } else if let Some(i) = sleeper {
            ServerId(i)
        } else {
            ServerId(shortest.map_or(0, |(_, i)| i))
        }
    }
}

/// A power manager that sleeps only during the night hours (a simple
/// calendar heuristic a datacenter operator might try).
struct NightSleeper;

impl PowerManager for NightSleeper {
    fn on_idle(
        &mut self,
        _server: ServerId,
        _view: &ClusterView<'_>,
        now: SimTime,
    ) -> TimeoutDecision {
        let hour = (now.as_secs() % 86_400.0) / 3600.0;
        if (0.0..6.0).contains(&hour) {
            TimeoutDecision::SleepNow
        } else {
            TimeoutDecision::After(120.0)
        }
    }
}

fn main() -> Result<(), String> {
    let m = 6;
    let cluster_config = ClusterConfig::paper(m);
    let workload = WorkloadConfig::google_like(3, 95_000.0 * m as f64 / 30.0);
    let trace = TraceGenerator::new(workload)?.generate(SECS_PER_DAY);

    let mut cluster = Cluster::new(cluster_config, trace.jobs().to_vec())?;
    let outcome = cluster.run(
        &mut BestFitAllocator,
        &mut NightSleeper,
        RunLimit::unbounded(),
    );

    println!("jobs completed : {}", outcome.totals.jobs_completed);
    println!("energy         : {:.2} kWh", outcome.totals.energy_kwh());
    println!("mean latency   : {:.1} s", outcome.totals.mean_latency_s());
    println!(
        "avg power      : {:.1} W",
        outcome.totals.average_power_watts()
    );
    if let Some(stats) = LatencyStats::from_jobs(cluster.completed_jobs()) {
        println!(
            "latency p50/p95: {:.0} s / {:.0} s (max {:.0} s)",
            stats.p50, stats.p95, stats.max
        );
    }
    Ok(())
}
