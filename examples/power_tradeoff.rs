//! Power/latency trade-off exploration (the Fig. 10 experiment in miniature):
//! sweeps the local tier's reward weight `w` (Eqn. 5) and compares the
//! resulting operating points against fixed-timeout baselines.
//!
//! ```sh
//! cargo run --release --example power_tradeoff
//! ```

use hierdrl::core::prelude::*;
use hierdrl::sim::prelude::*;
use hierdrl::trace::prelude::*;

fn main() -> Result<(), String> {
    let m = 8;
    let cluster = ClusterConfig::paper(m);
    let workload = WorkloadConfig::google_like(11, 95_000.0 * m as f64 / 30.0);
    let trace = TraceGenerator::new(workload)?.generate(2.0 * SECS_PER_DAY);
    println!("workload: {} jobs on {m} servers\n", trace.len());

    println!(
        "{:<24} {:>14} {:>14}",
        "local tier", "energy/job kJ", "latency/job s"
    );

    // Fixed-timeout baselines (paper: 30 / 60 / 90 s).
    for timeout in [30.0, 60.0, 90.0] {
        let pair = PolicyPair {
            name: format!("fixed timeout {timeout}s"),
            allocator: AllocatorKind::FirstFit,
            power: PowerKind::FixedTimeout(timeout),
        };
        let r = run_experiment(&pair, &cluster, &trace, RunLimit::unbounded())?;
        println!(
            "{:<24} {:>14.1} {:>14.1}",
            r.name,
            r.energy_per_job_j() / 1e3,
            r.mean_latency_s()
        );
    }

    // The RL power manager across the weight sweep.
    for w in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let pair = PolicyPair {
            name: format!("rl-dpm w={w}"),
            allocator: AllocatorKind::FirstFit,
            power: PowerKind::Rl(RlPowerConfig {
                weight: w,
                ..Default::default()
            }),
        };
        let r = run_experiment(&pair, &cluster, &trace, RunLimit::unbounded())?;
        println!(
            "{:<24} {:>14.1} {:>14.1}",
            r.name,
            r.energy_per_job_j() / 1e3,
            r.mean_latency_s()
        );
    }

    println!("\nLarger w favors power saving; smaller w favors latency.");
    println!("The full Fig. 10 reproduction lives in `cargo run -p hierdrl-bench --bin fig10`.");
    Ok(())
}
