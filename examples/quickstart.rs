//! Quickstart: simulate a small cluster under the paper's three systems and
//! print a summary comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hierdrl::core::prelude::*;
use hierdrl::sim::prelude::*;
use hierdrl::trace::prelude::*;

fn main() -> Result<(), String> {
    // A 8-server cluster with the paper's power model (87 W idle, 145 W
    // peak, 30 s sleep/wake transitions).
    let cluster = ClusterConfig::paper(8);

    // One day of a Google-like workload, scaled to the cluster size.
    let workload = WorkloadConfig::google_like(42, 95_000.0 * 8.0 / 30.0);
    let trace = TraceGenerator::new(workload)?.generate(SECS_PER_DAY);
    let stats = trace.stats().expect("non-empty trace");
    println!(
        "workload: {} jobs over {:.1} h (mean duration {:.0} s, offered CPU load {:.0}%)\n",
        stats.count,
        stats.span_s / 3600.0,
        stats.mean_duration_s,
        stats.offered_cpu_load(8) * 100.0
    );

    // The three systems of the paper's evaluation.
    let systems = vec![
        PolicyPair::round_robin_baseline(),
        PolicyPair::drl_only(DrlAllocatorConfig::default()),
        PolicyPair::hierarchical(DrlAllocatorConfig::default(), RlPowerConfig::default()),
    ];

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "system", "energy kWh", "lat/job s", "avg power W", "sleep %"
    );
    for pair in &systems {
        let result = run_experiment(pair, &cluster, &trace, RunLimit::unbounded())?;
        println!(
            "{:<14} {:>12.2} {:>12.1} {:>12.1} {:>10.1}",
            result.name,
            result.energy_kwh(),
            result.mean_latency_s(),
            result.average_power_w(),
            result.fleet.sleep_fraction * 100.0,
        );
    }
    println!("\nNote: learners here train online from scratch; the bench");
    println!("binaries (crates/bench) pre-train offline first, like the paper.");
    Ok(())
}
